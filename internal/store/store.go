// Package store is the serving layer's durable dataset substrate: every
// persisted dataset lives in its own directory as a wire-form base
// snapshot (snapshot.json) plus an append-only delta log (delta.log, one
// fsync'd, length-prefixed, CRC-checksummed record per PATCH), alongside
// the dataset's persisted consensus entries (consensus.json). The in-memory
// LRU above it (internal/cache) stays the fast path; the store is what
// survives eviction and restarts — a PATCH whose base session fell out of
// the cache, or a fresh process on the same data dir, reconstructs the
// session by loading the snapshot, building its pair matrix once, and
// replaying the log through Pairs.Add/Remove in O(n²) per record
// (byte-identical to a fresh build of the final dataset; property-tested).
//
// Durability protocol:
//
//   - Create writes the snapshot atomically (temp + fsync + rename + dir
//     fsync) and is idempotent by content hash. Directories are named by the
//     creation hash but claimed with os.Mkdir: a name still owned by a live
//     dataset whose hash has rotated away (or left by a crashed create) is
//     never reused — the new dataset takes a suffixed name instead.
//   - A PATCH appends ONE log record — however many ops it batches — and
//     fsyncs before anything in-memory mutates (write-ahead). A crash after
//     the append replays the record on restart; the un-acknowledged PATCH
//     is simply already applied, deterministically. A FAILED append is
//     rolled back (fsync'd truncate to the pre-append length) so a record
//     the client was told failed cannot replay; if the rollback itself
//     fails the dataset refuses further mutations (ErrLogDiverged) until a
//     restart replays the file as written.
//   - Records carry monotone sequence numbers and the snapshot records the
//     last sequence folded into it, so compaction — rewriting the snapshot
//     at the current state once the log exceeds the replay budget — commits
//     atomically at the snapshot rename: a crash before the log truncation
//     leaves old records that replay skips as no-ops.
//   - A corrupt log tail (torn write) is truncated on open and counted,
//     never parsed and never fatal. A checksum-valid record that no longer
//     applies is truncated the same way — together with everything after
//     it — so the file always matches the state the store serves.
//   - Delete appends a tombstone record before removing the directory, so
//     a crash mid-removal finishes the cleanup on the next open instead of
//     resurrecting a half-deleted dataset.
//
// Consensus persistence: consensus.json holds the spec-keyed results valid
// for exactly one dataset state (its current hash at write time) plus at
// most one warm-start hint. A PATCH rotates the file in the same critical
// section as the log append, demoting the best stored entry to the rotated
// hash's warm hint — and Open applies the same demotion when a crash left
// the file stamped with a stale hash. A restarted server preloads these
// entries and answers repeat traffic with consensus hits and zero solver
// runs.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"rankagg"
	"rankagg/internal/rankings"
)

// ErrNotFound reports a dataset hash the store does not hold (never held,
// rotated away by a PATCH, or deleted).
var ErrNotFound = errors.New("store: dataset not found")

// ErrStaleHash reports a lookup that raced a concurrent PATCH: the hash
// identified the dataset when the caller obtained it, but the dataset has
// rotated since. The caller follows the rotation (Location header) or
// retries.
var ErrStaleHash = errors.New("store: dataset hash rotated concurrently")

// ErrLogDiverged reports a dataset whose delta log hit an append failure
// that could not be rolled back: the file may hold a record the client was
// never told about, so in-memory and on-disk sequence numbers can no longer
// be trusted to agree. The dataset rejects further mutations (reads still
// serve the last acknowledged state) until a restart replays the log.
var ErrLogDiverged = errors.New("store: dataset log diverged; restart to recover")

// Config parameterizes Open.
type Config struct {
	// Dir is the data directory root. Created if missing.
	Dir string
	// ReplayBudget is the delta-log length (in records) past which a PATCH
	// folds the log into a fresh snapshot: replaying r records costs
	// r·O(n²), a snapshot rebuild O(m·n²), so the budget trades write
	// amplification against cold-reconstruction latency. 0 means the
	// default (64); negative disables compaction.
	ReplayBudget int
	// MatrixMode is the pair-matrix storage mode Rebuild uses, matching
	// the serving layer's -matrix-mode so a reconstructed session is
	// indistinguishable from a fresh build.
	MatrixMode rankagg.MatrixMode
}

// Stats is a point-in-time snapshot of the store counters.
type Stats struct {
	// Datasets is the number of datasets currently persisted.
	Datasets int
	// LogRecords is the total pending (un-compacted) delta-log records
	// across all datasets.
	LogRecords int
	// Replays counts session reconstructions (Rebuild calls that ran), and
	// ReplaySeconds their cumulative wall-clock cost.
	Replays       int64
	ReplaySeconds float64
	// Compactions counts delta logs folded into a fresh snapshot.
	Compactions int64
	// Truncations counts corrupt log tails truncated on open.
	Truncations int64
	// Bytes is the on-disk footprint (snapshots + logs) of all datasets.
	Bytes int64
}

// DatasetInfo describes one persisted dataset.
type DatasetInfo struct {
	// Hash is the dataset's CURRENT content hash — the handle every
	// endpoint keys on, rotated by each PATCH.
	Hash string
	N    int
	M    int
	// Version is the cumulative mutation count (rankings added + removed)
	// since creation, surviving compaction and restarts.
	Version uint64
	// LogRecords is the pending delta-log length (records not yet folded
	// into the snapshot); Bytes the dataset's on-disk footprint.
	LogRecords int
	Bytes      int64
}

// dataset is one persisted dataset's in-memory state. The store keeps the
// current rankings resident — O(m·n) per dataset, dwarfed by any cached
// O(n²) matrix — so PATCH validation and hash rotation never touch disk
// beyond the log append itself.
type dataset struct {
	mu  sync.Mutex
	dir string

	base        *rankings.Dataset // as persisted in snapshot.json
	baseVersion uint64
	baseSeq     int64
	names       []string

	cur     *rankings.Dataset
	curHash string
	version uint64
	seq     int64 // last appended record's sequence number

	pending   []logRecord // records after baseSeq, in order
	log       *os.File
	logBytes  int64
	snapBytes int64

	consensus consensusFile
	deleted   bool
	// failed latches an append whose rollback also failed (ErrLogDiverged):
	// the on-disk log may hold a record in-memory state never applied, so
	// mutations are refused until a restart replays the file as written.
	failed bool
}

// Store is the durable dataset store. All methods are safe for concurrent
// use. Lock order: a dataset's mu may take the store's mu (for re-keying),
// never the reverse.
type Store struct {
	dir          string
	replayBudget int
	matrixMode   rankagg.MatrixMode

	mu     sync.Mutex
	byHash map[string]*dataset
	// creating holds the content hashes with a Create in flight: the
	// snapshot's fsync'd I/O runs outside mu, so the hash is reserved here
	// first and a second identical PUT waits on the channel instead of
	// writing a duplicate directory.
	creating map[string]chan struct{}

	replays     atomic.Int64
	replayNanos atomic.Int64
	compactions atomic.Int64
	truncations atomic.Int64
}

const (
	snapshotFile  = "snapshot.json"
	deltaLogFile  = "delta.log"
	consensusName = "consensus.json"
	datasetsDir   = "datasets"
)

// Open loads (or initializes) the store rooted at cfg.Dir: every dataset
// directory's snapshot is read, its delta log replayed at the dataset level
// (cheap — no matrices are built here), corrupt tails truncated, tombstoned
// directories removed, and stale consensus files demoted per the crash
// protocol above.
func Open(cfg Config) (*Store, error) {
	budget := cfg.ReplayBudget
	if budget == 0 {
		budget = 64
	}
	root := filepath.Join(cfg.Dir, datasetsDir)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", root, err)
	}
	s := &Store{
		dir:          cfg.Dir,
		replayBudget: budget,
		matrixMode:   cfg.MatrixMode,
		byHash:       make(map[string]*dataset),
		creating:     make(map[string]chan struct{}),
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", root, err)
	}
	for _, ent := range entries {
		if !ent.IsDir() {
			continue
		}
		dir := filepath.Join(root, ent.Name())
		ds, err := s.openDataset(dir)
		if err != nil {
			return nil, fmt.Errorf("store: opening dataset %s: %w", ent.Name(), err)
		}
		if ds == nil {
			continue // tombstoned or unreadable; cleaned up
		}
		if _, dup := s.byHash[ds.curHash]; dup {
			// Two directories replay to the same content — keep the first,
			// the duplicate holds nothing the index can reach.
			ds.closeLocked()
			continue
		}
		s.byHash[ds.curHash] = ds
	}
	return s, nil
}

// openDataset loads one dataset directory; nil, nil means the directory
// was tombstoned (and has been removed) or holds no snapshot.
func (s *Store) openDataset(dir string) (*dataset, error) {
	snapPath := filepath.Join(dir, snapshotFile)
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		if os.IsNotExist(err) {
			// A crash between directory creation and the snapshot rename,
			// or mid-deletion after the tombstone removed the snapshot;
			// either way nothing here is reachable.
			os.RemoveAll(dir)
			return nil, nil
		}
		return nil, err
	}
	var snap snapshotWire
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", snapshotFile, err)
	}
	base := &rankings.Dataset{N: snap.N, Rankings: snap.Rankings}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("invalid snapshot: %w", err)
	}
	ds := &dataset{
		dir:         dir,
		base:        base,
		baseVersion: snap.Version,
		baseSeq:     snap.Seq,
		names:       snap.Names,
		cur:         base,
		version:     snap.Version,
		seq:         snap.Seq,
		snapBytes:   int64(len(raw)),
	}

	logPath := filepath.Join(dir, deltaLogFile)
	data, err := os.ReadFile(logPath)
	if err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	payloads, offsets, goodLen := readLog(data)
	if goodLen < int64(len(data)) {
		if err := os.Truncate(logPath, goodLen); err != nil {
			return nil, fmt.Errorf("truncating corrupt log tail: %w", err)
		}
		s.truncations.Add(1)
	}
	tombstoned := false
	for i, payload := range payloads {
		var rec logRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, fmt.Errorf("parsing log record: %w", err)
		}
		if rec.Seq <= ds.baseSeq {
			continue // already folded into the snapshot (compaction raced a crash)
		}
		if rec.Op == opTombstone {
			tombstoned = true
			break
		}
		next, err := applyDelta(ds.cur, rec.Add, rec.Remove)
		if err != nil {
			// A record that no longer applies can only come from
			// corruption that passed the checksum; treat it — and
			// everything after it — as the torn tail it effectively is,
			// ON DISK TOO: left in place it would shadow every later
			// append (duplicate sequence numbers, records skipped on the
			// next open), so the file must match the state served here.
			if err := os.Truncate(logPath, offsets[i]); err != nil {
				return nil, fmt.Errorf("truncating unappliable log tail: %w", err)
			}
			s.truncations.Add(1)
			break
		}
		ds.cur = next
		ds.version += uint64(len(rec.Add) + len(rec.Remove))
		ds.seq = rec.Seq
		ds.pending = append(ds.pending, rec)
	}
	if tombstoned {
		os.RemoveAll(dir)
		return nil, nil
	}
	ds.curHash = ds.cur.Hash()

	f, err := os.OpenFile(logPath, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	ds.log = f
	if fi, err := f.Stat(); err == nil {
		ds.logBytes = fi.Size()
	}

	// Consensus entries are valid for exactly one dataset state. A stale
	// stamp means a crash landed between a PATCH's log append and its
	// consensus rewrite: demote the best entry to the current hash's warm
	// hint — deterministically the same outcome the completed PATCH would
	// have persisted.
	if err := ds.loadConsensus(); err != nil {
		return nil, err
	}
	return ds, nil
}

func (ds *dataset) loadConsensus() error {
	raw, err := os.ReadFile(filepath.Join(ds.dir, consensusName))
	if os.IsNotExist(err) {
		ds.consensus = consensusFile{Hash: ds.curHash}
		return nil
	}
	if err != nil {
		return err
	}
	var cf consensusFile
	if err := json.Unmarshal(raw, &cf); err != nil {
		// A torn consensus write loses cached results, never data.
		ds.consensus = consensusFile{Hash: ds.curHash}
		return nil
	}
	if cf.Hash != ds.curHash {
		cf = consensusFile{Hash: ds.curHash, Warm: bestEntry(cf.Entries)}
		data, err := json.Marshal(cf)
		if err == nil {
			writeFileSync(filepath.Join(ds.dir, consensusName), data)
		}
	}
	ds.consensus = cf
	return nil
}

// bestEntry picks the lowest-score persisted result — the warm-start
// candidate, mirroring the in-memory cache's InvalidateDataset harvest.
func bestEntry(entries map[string]*ResultWire) *ResultWire {
	var best *ResultWire
	for _, e := range entries {
		if e == nil || e.Consensus == nil {
			continue
		}
		if best == nil || e.Score < best.Score {
			best = e
		}
	}
	return best
}

// Close releases the store's file handles. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ds := range s.byHash {
		ds.mu.Lock()
		ds.closeLocked()
		ds.mu.Unlock()
	}
	s.byHash = make(map[string]*dataset)
	return nil
}

func (ds *dataset) closeLocked() {
	if ds.log != nil {
		ds.log.Close()
		ds.log = nil
	}
}

// lookup fetches the dataset currently indexed under hash.
func (s *Store) lookup(hash string) (*dataset, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ds, ok := s.byHash[hash]
	return ds, ok
}

// Has reports whether hash is a persisted dataset's current hash.
func (s *Store) Has(hash string) bool {
	_, ok := s.lookup(hash)
	return ok
}

// Create persists d (with optional element names) under its content hash,
// idempotently: an existing dataset with the same hash is left untouched
// and created reports false. The snapshot is durable when Create returns.
//
// The fsync'd snapshot I/O runs outside the store mutex — lookups, PATCH
// re-keys and deletes on other datasets never wait behind a PUT's disk
// latency. The hash is reserved first so two identical concurrent PUTs
// serialize; the loser reports the dataset as already existing.
func (s *Store) Create(d *rankings.Dataset, names []string) (hash string, created bool, err error) {
	hash = d.Hash()
	var reserved chan struct{}
	for {
		s.mu.Lock()
		if _, ok := s.byHash[hash]; ok {
			s.mu.Unlock()
			return hash, false, nil
		}
		ch, busy := s.creating[hash]
		if !busy {
			reserved = make(chan struct{})
			s.creating[hash] = reserved
			s.mu.Unlock()
			break
		}
		s.mu.Unlock()
		<-ch
	}
	defer func() {
		s.mu.Lock()
		delete(s.creating, hash)
		s.mu.Unlock()
		close(reserved)
	}()

	// The directory is named by the creation hash, but a PATCH rotates the
	// index key while the directory keeps its name — so the hash being free
	// does NOT mean its directory is. os.Mkdir is the collision detector:
	// on EEXIST the name belongs to someone else (a live rotated dataset,
	// or debris from a crashed create) and this dataset takes the next
	// suffixed name instead of overwriting files another dataset owns.
	root := filepath.Join(s.dir, datasetsDir)
	dir := filepath.Join(root, hash)
	for i := 1; ; i++ {
		mkErr := os.Mkdir(dir, 0o755)
		if mkErr == nil {
			break
		}
		if !os.IsExist(mkErr) {
			return "", false, fmt.Errorf("store: creating %s: %w", dir, mkErr)
		}
		dir = filepath.Join(root, fmt.Sprintf("%s-%d", hash, i))
	}
	snap := snapshotWire{Hash: hash, N: d.N, Names: names, Rankings: d.Rankings}
	raw, err := json.Marshal(snap)
	if err != nil {
		os.RemoveAll(dir)
		return "", false, err
	}
	if err := writeFileSync(filepath.Join(dir, snapshotFile), raw); err != nil {
		os.RemoveAll(dir)
		return "", false, fmt.Errorf("store: writing snapshot: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, deltaLogFile), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		os.RemoveAll(dir)
		return "", false, err
	}
	ds := &dataset{
		dir:       dir,
		base:      d,
		names:     names,
		cur:       d,
		curHash:   hash,
		snapBytes: int64(len(raw)),
		log:       f,
		consensus: consensusFile{Hash: hash},
	}
	s.mu.Lock()
	if _, clash := s.byHash[hash]; clash {
		// While the snapshot was being written, a PATCH rotated another
		// dataset TO this exact content. Identical content is
		// indistinguishable to every caller — keep the incumbent, drop the
		// just-written copy.
		s.mu.Unlock()
		f.Close()
		os.RemoveAll(dir)
		return hash, false, nil
	}
	s.byHash[hash] = ds
	s.mu.Unlock()
	return hash, true, nil
}

// AppendPatch validates one atomic delta against the dataset currently at
// hash, appends it to the delta log as ONE record (fsync'd — the
// write-ahead point), rotates the dataset to its new content hash, rotates
// the persisted consensus file (best stored entry demoted to the new
// hash's warm hint), and folds the log into a fresh snapshot when it
// exceeds the replay budget. Validation mirrors Session.ApplyDelta exactly
// — same matching, same ordering, same sentinel errors — so the store and
// a cached session can never diverge on what a delta means.
func (s *Store) AppendPatch(hash string, add, remove []*rankings.Ranking) (newHash string, info DatasetInfo, err error) {
	ds, ok := s.lookup(hash)
	if !ok {
		return "", DatasetInfo{}, ErrNotFound
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.deleted || ds.curHash != hash {
		return "", DatasetInfo{}, ErrStaleHash
	}
	if ds.failed {
		return "", DatasetInfo{}, ErrLogDiverged
	}
	next, err := applyDelta(ds.cur, add, remove)
	if err != nil {
		return "", DatasetInfo{}, err
	}

	rec := logRecord{Seq: ds.seq + 1, Op: opPatch, Add: add, Remove: remove}
	payload, err := json.Marshal(rec)
	if err != nil {
		return "", DatasetInfo{}, err
	}
	n, err := appendRecord(ds.log, payload, ds.logBytes)
	if err != nil {
		if errors.Is(err, ErrLogDiverged) {
			ds.failed = true
		}
		return "", DatasetInfo{}, err
	}
	ds.logBytes += n
	ds.seq = rec.Seq
	ds.pending = append(ds.pending, rec)
	ds.cur = next
	ds.version += uint64(len(add) + len(remove))
	newHash = next.Hash()
	oldHash := ds.curHash
	ds.curHash = newHash

	// Re-key the index. Lock order: dataset mu → store mu, always.
	s.mu.Lock()
	delete(s.byHash, oldHash)
	if _, clash := s.byHash[newHash]; !clash {
		s.byHash[newHash] = ds
	}
	s.mu.Unlock()

	// Rotate the persisted consensus in the same critical section: the old
	// hash's entries can never be served again, their best becomes the new
	// hash's warm hint.
	ds.consensus = consensusFile{Hash: newHash, Warm: bestEntry(ds.consensus.Entries)}
	ds.writeConsensusLocked()

	if s.replayBudget > 0 && len(ds.pending) > s.replayBudget {
		if err := ds.compactLocked(); err == nil {
			s.compactions.Add(1)
		}
	}
	return newHash, ds.infoLocked(), nil
}

// compactLocked folds the pending log into a fresh snapshot at the current
// state. The snapshot rename is the commit point (records at or below its
// Seq replay as no-ops); the log truncation after it is pure space
// reclamation. Caller holds ds.mu.
func (ds *dataset) compactLocked() error {
	snap := snapshotWire{
		Hash:     ds.curHash,
		Version:  ds.version,
		Seq:      ds.seq,
		N:        ds.cur.N,
		Names:    ds.names,
		Rankings: ds.cur.Rankings,
	}
	raw, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	if err := writeFileSync(filepath.Join(ds.dir, snapshotFile), raw); err != nil {
		return err
	}
	ds.base = ds.cur
	ds.baseVersion = ds.version
	ds.baseSeq = ds.seq
	ds.snapBytes = int64(len(raw))
	ds.pending = nil
	// Reset the log in place; a failure here costs disk, not correctness —
	// logBytes keeps tracking the file's true length either way (it is the
	// rollback point of the next append, so it must never exceed the file).
	if err := ds.log.Truncate(0); err == nil {
		ds.logBytes = 0
	}
	return nil
}

// Delete tombstones and removes the dataset at hash: the tombstone record
// is fsync'd before the directory goes, so a crash mid-removal finishes
// the job on the next Open instead of resurrecting half a dataset.
func (s *Store) Delete(hash string) (bool, error) {
	ds, ok := s.lookup(hash)
	if !ok {
		return false, nil
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.deleted || ds.curHash != hash {
		return false, nil
	}
	if ds.failed {
		return false, ErrLogDiverged
	}
	rec := logRecord{Seq: ds.seq + 1, Op: opTombstone}
	payload, err := json.Marshal(rec)
	if err != nil {
		return false, err
	}
	if _, err := appendRecord(ds.log, payload, ds.logBytes); err != nil {
		if errors.Is(err, ErrLogDiverged) {
			ds.failed = true
		}
		return false, err
	}
	ds.deleted = true
	ds.closeLocked()
	s.mu.Lock()
	delete(s.byHash, hash)
	s.mu.Unlock()
	if err := os.RemoveAll(ds.dir); err != nil {
		return true, fmt.Errorf("store: removing %s: %w", ds.dir, err)
	}
	return true, nil
}

// Dataset returns the current rankings and names of the dataset at hash.
// The returned dataset shares its (immutable) rankings with the store; the
// caller must not mutate them.
func (s *Store) Dataset(hash string) (*rankings.Dataset, []string, error) {
	ds, ok := s.lookup(hash)
	if !ok {
		return nil, nil, ErrNotFound
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.deleted || ds.curHash != hash {
		return nil, nil, ErrStaleHash
	}
	return ds.cur, ds.names, nil
}

// Rebuild reconstructs the session of the dataset at hash: the base
// snapshot's pair matrix is built once, then every pending log record
// replays through the session's O(n²) delta path — the exact code a live
// PATCH runs, so the reconstructed matrix is byte-identical to what the
// original process held (and Pairs.Equal to a fresh build of the final
// dataset). The replay is counted and timed in Stats.
func (s *Store) Rebuild(hash string) (*rankagg.Session, []string, error) {
	ds, ok := s.lookup(hash)
	if !ok {
		return nil, nil, ErrNotFound
	}
	ds.mu.Lock()
	if ds.deleted || ds.curHash != hash {
		ds.mu.Unlock()
		return nil, nil, ErrStaleHash
	}
	base := ds.base
	names := ds.names
	pending := append([]logRecord(nil), ds.pending...)
	ds.mu.Unlock()

	// The O(m·n²) build and O(n²)-per-record replay run outside every
	// lock; the state captured above is immutable (mutations replace the
	// slices, never modify them).
	start := time.Now()
	sess, err := rankagg.NewSession(base, rankagg.WithMatrixMode(s.matrixMode))
	if err != nil {
		return nil, nil, fmt.Errorf("store: rebuilding %s: %w", hash, err)
	}
	sess.Pairs()
	for _, rec := range pending {
		if err := sess.ApplyDelta(rec.Add, rec.Remove); err != nil {
			return nil, nil, fmt.Errorf("store: replaying %s (seq %d): %w", hash, rec.Seq, err)
		}
	}
	if got := sess.Hash(); got != hash {
		return nil, nil, fmt.Errorf("store: replay of %s reconstructed hash %s (%w)", hash, got, ErrStaleHash)
	}
	s.replays.Add(1)
	s.replayNanos.Add(time.Since(start).Nanoseconds())
	return sess, names, nil
}

// RebuildApprox reconstructs the approximation-tier session of the dataset
// at hash: an ApproxSession over the base snapshot (no pair matrix — the
// incremental Lehmer/score state builds lazily on the first Run), with
// every pending log record replayed through ApproxSession.ApplyDelta — the
// exact code a live approx PATCH runs, so partial added rankings replay on
// toplists datasets where Rebuild's matrix session would reject them. The
// replay is counted and timed in Stats alongside matrix rebuilds.
func (s *Store) RebuildApprox(hash string) (*rankagg.ApproxSession, []string, error) {
	ds, ok := s.lookup(hash)
	if !ok {
		return nil, nil, ErrNotFound
	}
	ds.mu.Lock()
	if ds.deleted || ds.curHash != hash {
		ds.mu.Unlock()
		return nil, nil, ErrStaleHash
	}
	base := ds.base
	names := ds.names
	pending := append([]logRecord(nil), ds.pending...)
	ds.mu.Unlock()

	start := time.Now()
	sess, err := rankagg.NewApproxSession(base)
	if err != nil {
		return nil, nil, fmt.Errorf("store: rebuilding %s: %w", hash, err)
	}
	for _, rec := range pending {
		if err := sess.ApplyDelta(rec.Add, rec.Remove); err != nil {
			return nil, nil, fmt.Errorf("store: replaying %s (seq %d): %w", hash, rec.Seq, err)
		}
	}
	if got := sess.Hash(); got != hash {
		return nil, nil, fmt.Errorf("store: replay of %s reconstructed hash %s (%w)", hash, got, ErrStaleHash)
	}
	s.replays.Add(1)
	s.replayNanos.Add(time.Since(start).Nanoseconds())
	return sess, names, nil
}

// SaveConsensus persists one spec-keyed result for the dataset currently
// at hash, spending the warm hint (a stored entry supersedes it — the hint
// seeds exactly one solve). A result for a rotated-away hash is dropped
// silently: it raced a PATCH and describes a dataset state the store no
// longer serves.
func (s *Store) SaveConsensus(hash, specKey string, res *ResultWire) {
	if res == nil {
		return
	}
	ds, ok := s.lookup(hash)
	if !ok {
		return
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.deleted || ds.curHash != hash {
		return
	}
	if ds.consensus.Entries == nil {
		ds.consensus.Entries = make(map[string]*ResultWire)
	}
	ds.consensus.Hash = hash
	ds.consensus.Entries[specKey] = res
	ds.consensus.Warm = nil
	ds.writeConsensusLocked()
}

// Consensus returns the persisted entries and warm hint of the dataset at
// hash, plus its mutation version (what a preloading consensus cache
// stamps the entries with).
func (s *Store) Consensus(hash string) (entries map[string]*ResultWire, warm *ResultWire, version uint64, ok bool) {
	ds, found := s.lookup(hash)
	if !found {
		return nil, nil, 0, false
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.deleted || ds.curHash != hash {
		return nil, nil, 0, false
	}
	if len(ds.consensus.Entries) > 0 {
		entries = make(map[string]*ResultWire, len(ds.consensus.Entries))
		for k, v := range ds.consensus.Entries {
			entries[k] = v
		}
	}
	return entries, ds.consensus.Warm, ds.version, true
}

func (ds *dataset) writeConsensusLocked() {
	data, err := json.Marshal(ds.consensus)
	if err != nil {
		return
	}
	// Best-effort: losing a consensus entry to an I/O error costs a
	// re-solve after the next restart, nothing more.
	writeFileSync(filepath.Join(ds.dir, consensusName), data)
}

// Info returns the metadata of the dataset at hash.
func (s *Store) Info(hash string) (DatasetInfo, bool) {
	ds, ok := s.lookup(hash)
	if !ok {
		return DatasetInfo{}, false
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if ds.deleted || ds.curHash != hash {
		return DatasetInfo{}, false
	}
	return ds.infoLocked(), true
}

func (ds *dataset) infoLocked() DatasetInfo {
	return DatasetInfo{
		Hash:       ds.curHash,
		N:          ds.cur.N,
		M:          len(ds.cur.Rankings),
		Version:    ds.version,
		LogRecords: len(ds.pending),
		Bytes:      ds.snapBytes + ds.logBytes,
	}
}

// List returns every persisted dataset's metadata, unordered.
func (s *Store) List() []DatasetInfo {
	s.mu.Lock()
	all := make([]*dataset, 0, len(s.byHash))
	for _, ds := range s.byHash {
		all = append(all, ds)
	}
	s.mu.Unlock()
	out := make([]DatasetInfo, 0, len(all))
	for _, ds := range all {
		ds.mu.Lock()
		if !ds.deleted {
			out = append(out, ds.infoLocked())
		}
		ds.mu.Unlock()
	}
	return out
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Replays:       s.replays.Load(),
		ReplaySeconds: float64(s.replayNanos.Load()) / 1e9,
		Compactions:   s.compactions.Load(),
		Truncations:   s.truncations.Load(),
	}
	for _, info := range s.List() {
		st.Datasets++
		st.LogRecords += info.LogRecords
		st.Bytes += info.Bytes
	}
	return st
}

// applyDelta applies one atomic delta to d, returning the new dataset:
// removals matched by bucket-order equality (each dataset ranking consumed
// at most once) and applied before the additions, which append in order —
// Session.ApplyDelta's exact semantics and sentinel errors (and, on
// incomplete datasets, ApproxSession.ApplyDelta's partial-add rule), so the
// store and a cached session always agree on a delta's meaning and its
// resulting content hash.
func applyDelta(d *rankings.Dataset, add, remove []*rankings.Ranking) (*rankings.Dataset, error) {
	complete := d.Complete()
	for _, r := range add {
		if r == nil {
			return nil, fmt.Errorf("store: nil ranking in delta")
		}
		if err := r.Validate(); err != nil {
			return nil, err
		}
		if r.Len() == 0 {
			return nil, fmt.Errorf("store: empty ranking in delta")
		}
		if r.MaxElement() >= d.N {
			return nil, fmt.Errorf("store: added ranking %s exceeds the dataset universe of %d elements", r, d.N)
		}
		// A complete dataset must stay complete (one partial ranking would
		// invalidate the matrix tier's fast paths); a toplists dataset
		// absorbs partial rankings — ApproxSession.ApplyDelta's exact rule.
		if complete && r.Len() != d.N {
			return nil, fmt.Errorf("store: added ranking %s must cover the complete dataset's universe of %d elements (partial adds apply only to toplists datasets)", r, d.N)
		}
	}
	dropped := make([]bool, len(d.Rankings))
	for _, r := range remove {
		if r == nil {
			return nil, fmt.Errorf("store: nil ranking in delta")
		}
		found := -1
		for i, have := range d.Rankings {
			if !dropped[i] && have.Equal(r) {
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("%w: %s", rankagg.ErrRankingNotFound, r)
		}
		dropped[found] = true
	}
	if len(d.Rankings)-len(remove)+len(add) == 0 {
		return nil, rankagg.ErrDatasetEmptied
	}
	rks := make([]*rankings.Ranking, 0, len(d.Rankings)-len(remove)+len(add))
	for i, r := range d.Rankings {
		if !dropped[i] {
			rks = append(rks, r)
		}
	}
	rks = append(rks, add...)
	return &rankings.Dataset{N: d.N, Rankings: rks}, nil
}

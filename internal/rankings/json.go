package rankings

import (
	"encoding/json"
	"errors"
	"fmt"
)

// MarshalJSON encodes a ranking as its bucket array, e.g. [[0],[1,2]].
func (r *Ranking) MarshalJSON() ([]byte, error) {
	if r.Buckets == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(r.Buckets)
}

// UnmarshalJSON decodes a bucket array and validates it.
func (r *Ranking) UnmarshalJSON(data []byte) error {
	var buckets [][]int
	if err := json.Unmarshal(data, &buckets); err != nil {
		return err
	}
	tmp := Ranking{Buckets: buckets}
	if err := tmp.Validate(); err != nil {
		return fmt.Errorf("rankings: invalid ranking in JSON: %w", err)
	}
	r.Buckets = buckets
	return nil
}

// ErrNoRankings is returned by DatasetWire.Decode for payloads carrying no
// rankings at all: there is nothing to aggregate, and no universe size can
// be inferred.
var ErrNoRankings = errors.New("rankings: no rankings in payload")

// DatasetWire is the wire form of a dataset, shared by the dataset files
// written by MarshalDatasetJSON and by API request documents that embed a
// dataset (the serving layer's POST /v1/aggregate body). N may be omitted
// on input: Decode then infers the universe size from the largest element
// ID (and the name count, when names are given).
type DatasetWire struct {
	N        int        `json:"n,omitempty"`
	Names    []string   `json:"names,omitempty"`
	Rankings []*Ranking `json:"rankings"`
}

// Decode validates the wire form and returns the dataset, plus the universe
// when the payload carried element names (nil otherwise).
func (w *DatasetWire) Decode() (*Dataset, *Universe, error) {
	if len(w.Rankings) == 0 {
		return nil, nil, ErrNoRankings
	}
	n := w.N
	if n == 0 {
		for _, r := range w.Rankings {
			if m := r.MaxElement() + 1; m > n {
				n = m
			}
		}
		if len(w.Names) > n {
			n = len(w.Names)
		}
	}
	d := &Dataset{N: n, Rankings: w.Rankings}
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	var u *Universe
	if len(w.Names) > 0 {
		if len(w.Names) != n {
			return nil, nil, fmt.Errorf("rankings: %d names for %d elements", len(w.Names), n)
		}
		u = NewUniverse()
		for _, nm := range w.Names {
			u.ID(nm)
		}
		if u.Size() != n {
			return nil, nil, fmt.Errorf("rankings: duplicate names in JSON dataset")
		}
	}
	return d, u, nil
}

// BucketNames renders a ranking as nested name lists for JSON responses:
// one string slice per bucket, elements named from u (numeric fallbacks
// for IDs outside the universe, nil u names every element numerically).
func BucketNames(r *Ranking, u *Universe) [][]string {
	out := make([][]string, len(r.Buckets))
	for i, b := range r.Buckets {
		names := make([]string, len(b))
		for j, e := range b {
			if u != nil {
				names[j] = u.Name(e)
			} else {
				names[j] = fmt.Sprintf("#%d", e)
			}
		}
		out[i] = names
	}
	return out
}

// MarshalDatasetJSON encodes a dataset (and its universe's names, when
// non-nil) as JSON.
func MarshalDatasetJSON(d *Dataset, u *Universe) ([]byte, error) {
	out := DatasetWire{N: d.N, Rankings: d.Rankings}
	if u != nil {
		out.Names = u.Names()
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalDatasetJSON decodes a dataset file; the returned universe is nil
// when the payload carried no names. Unlike DatasetWire.Decode it accepts
// an empty ranking list (an empty dataset file is valid), but it requires
// an explicit universe size for any named payload.
func UnmarshalDatasetJSON(data []byte) (*Dataset, *Universe, error) {
	var in DatasetWire
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, nil, err
	}
	d := &Dataset{N: in.N, Rankings: in.Rankings}
	if d.Rankings == nil {
		d.Rankings = []*Ranking{}
	}
	if err := d.Validate(); err != nil {
		return nil, nil, err
	}
	var u *Universe
	if len(in.Names) > 0 {
		if len(in.Names) != in.N {
			return nil, nil, fmt.Errorf("rankings: %d names for %d elements", len(in.Names), in.N)
		}
		u = NewUniverse()
		for _, nm := range in.Names {
			u.ID(nm)
		}
		if u.Size() != in.N {
			return nil, nil, fmt.Errorf("rankings: duplicate names in JSON dataset")
		}
	}
	return d, u, nil
}

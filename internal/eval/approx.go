package eval

import (
	"fmt"
	"math"

	_ "rankagg/internal/approx" // register the matrix-free tier
	"rankagg/internal/core"
	"rankagg/internal/kendall"
	"rankagg/internal/rankings"
)

// ApproxQuality summarizes the fidelity of one matrix-free approximation
// algorithm to an exact-tier reference across a dataset collection: the
// score ratio K(approx,R)/K(ref,R) per dataset (1 = as good as the
// reference, below 1 = better) and the normalized generalized Kendall
// distance between the two consensus rankings.
type ApproxQuality struct {
	Algorithm string
	MeanRatio float64 // mean score ratio over the collection
	MaxRatio  float64 // worst dataset's ratio
	MeanDist  float64 // mean G(approx, ref) / (n(n-1)/2) ∈ [0, 1]
	// PctMatched is the share of datasets where the approximation reached
	// (or beat) the reference score.
	PctMatched float64
	Datasets   int
}

// ApproxOptions configures CompareApprox.
type ApproxOptions struct {
	// Reference is the exact-tier algorithm approximations are measured
	// against (default "BioConsert"). It must not be matrix-free.
	Reference string
	// Algorithms lists the matrix-free algorithms under evaluation
	// (default lehmer, avgrank, scores).
	Algorithms []string
}

// CompareApprox runs the matrix-free approximation tier and an exact-tier
// reference over a collection of complete datasets and reports, per
// approximation algorithm, how close its consensus quality lands to the
// reference's. The pair matrix is built once per dataset and shared by the
// reference run and all scoring, so the approximations themselves still
// never touch one.
func CompareApprox(datasets []*rankings.Dataset, opt ApproxOptions) ([]ApproxQuality, error) {
	refName := opt.Reference
	if refName == "" {
		refName = "BioConsert"
	}
	ref, err := core.New(refName)
	if err != nil {
		return nil, err
	}
	if core.IsMatrixFree(ref) {
		return nil, fmt.Errorf("eval: reference %s is matrix-free; pick an exact-tier algorithm", refName)
	}
	names := opt.Algorithms
	if len(names) == 0 {
		names = []string{"lehmer", "avgrank", "scores"}
	}
	algos := make([]core.Aggregator, len(names))
	for i, name := range names {
		a, err := core.New(name)
		if err != nil {
			return nil, err
		}
		if !core.IsMatrixFree(a) {
			return nil, fmt.Errorf("eval: %s is not matrix-free; CompareApprox evaluates the approximation tier only", name)
		}
		algos[i] = a
	}

	out := make([]ApproxQuality, len(algos))
	for i, a := range algos {
		out[i] = ApproxQuality{Algorithm: a.Name()}
	}
	for _, d := range datasets {
		if err := core.CheckInput(d); err != nil {
			return nil, fmt.Errorf("eval: reference tier needs complete datasets: %w", err)
		}
		pairs := kendall.NewPairs(d)
		refCons, err := core.AggregateWithPairs(ref, d, pairs)
		if err != nil {
			return nil, fmt.Errorf("eval: reference %s: %w", refName, err)
		}
		refScore := pairs.Score(refCons)
		maxPairs := float64(d.N) * float64(d.N-1) / 2
		for i, a := range algos {
			cons, err := a.Aggregate(d)
			if err != nil {
				return nil, fmt.Errorf("eval: %s: %w", a.Name(), err)
			}
			score := pairs.Score(cons)
			ratio := 1.0
			switch {
			case refScore > 0:
				ratio = float64(score) / float64(refScore)
			case score > 0:
				ratio = math.Inf(1)
			}
			q := &out[i]
			q.Datasets++
			q.MeanRatio += ratio
			if ratio > q.MaxRatio {
				q.MaxRatio = ratio
			}
			if maxPairs > 0 {
				q.MeanDist += float64(kendall.Dist(cons, refCons, d.N)) / maxPairs
			}
			if score <= refScore {
				q.PctMatched++
			}
		}
	}
	for i := range out {
		if n := float64(out[i].Datasets); n > 0 {
			out[i].MeanRatio /= n
			out[i].MeanDist /= n
			out[i].PctMatched = 100 * out[i].PctMatched / n
		}
	}
	return out, nil
}

package rankings

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAndLen(t *testing.T) {
	r := New([]int{0}, []int{1, 2})
	if got := r.Len(); got != 3 {
		t.Errorf("Len() = %d, want 3", got)
	}
	if got := r.NumBuckets(); got != 2 {
		t.Errorf("NumBuckets() = %d, want 2", got)
	}
	if r.IsPermutation() {
		t.Error("IsPermutation() = true for ranking with a tie")
	}
}

func TestFromPermutation(t *testing.T) {
	r := FromPermutation([]int{2, 0, 1})
	if !r.IsPermutation() {
		t.Fatal("FromPermutation result is not a permutation")
	}
	want := [][]int{{2}, {0}, {1}}
	if !reflect.DeepEqual(r.Buckets, want) {
		t.Errorf("Buckets = %v, want %v", r.Buckets, want)
	}
}

func TestFromPositions(t *testing.T) {
	// pos: element 0 in bucket 1, elements 1,2 in bucket 2, element 3 absent.
	r := FromPositions([]int{1, 2, 2, 0})
	want := [][]int{{0}, {1, 2}}
	if !reflect.DeepEqual(r.Buckets, want) {
		t.Errorf("Buckets = %v, want %v", r.Buckets, want)
	}
}

func TestFromPositionsNonContiguous(t *testing.T) {
	r := FromPositions([]int{5, 9, 9, 2})
	want := [][]int{{3}, {0}, {1, 2}}
	if !reflect.DeepEqual(r.Buckets, want) {
		t.Errorf("Buckets = %v, want %v", r.Buckets, want)
	}
}

func TestPositionsRoundTrip(t *testing.T) {
	r := New([]int{3}, []int{0, 2}, []int{1})
	pos := r.Positions(5)
	want := []int{2, 3, 2, 1, 0}
	if !reflect.DeepEqual(pos, want) {
		t.Errorf("Positions = %v, want %v", pos, want)
	}
	back := FromPositions(pos)
	if !back.Equal(r) {
		t.Errorf("round trip: got %v, want %v", back, r)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		r    *Ranking
		ok   bool
	}{
		{"valid", New([]int{0}, []int{1, 2}), true},
		{"empty ranking", New(), true},
		{"empty bucket", New([]int{0}, nil), false},
		{"duplicate", New([]int{0}, []int{0}), false},
		{"duplicate in bucket", New([]int{1, 1}), false},
		{"negative", New([]int{-1}), false},
	}
	for _, tc := range cases {
		err := tc.r.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestEqualIgnoresBucketInternalOrder(t *testing.T) {
	a := New([]int{0}, []int{2, 1})
	b := New([]int{0}, []int{1, 2})
	if !a.Equal(b) {
		t.Error("rankings differing only in bucket-internal order must be Equal")
	}
	c := New([]int{0, 1}, []int{2})
	if a.Equal(c) {
		t.Error("different bucket orders must not be Equal")
	}
}

func TestCloneIsDeep(t *testing.T) {
	a := New([]int{0}, []int{1, 2})
	b := a.Clone()
	b.Buckets[1][0] = 9
	if a.Buckets[1][0] == 9 {
		t.Error("Clone shares bucket storage with original")
	}
}

func TestString(t *testing.T) {
	r := New([]int{0}, []int{2, 1})
	if got, want := r.String(), "[{0},{1,2}]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestContainsAndElements(t *testing.T) {
	r := New([]int{4}, []int{1, 3})
	if !r.Contains(3) || r.Contains(0) {
		t.Error("Contains gave wrong answers")
	}
	if got, want := r.Elements(), []int{4, 1, 3}; !reflect.DeepEqual(got, want) {
		t.Errorf("Elements() = %v, want %v", got, want)
	}
	if got := r.MaxElement(); got != 4 {
		t.Errorf("MaxElement() = %d, want 4", got)
	}
}

func TestMaxElementEmpty(t *testing.T) {
	if got := New().MaxElement(); got != -1 {
		t.Errorf("MaxElement() on empty = %d, want -1", got)
	}
}

func TestDatasetBasics(t *testing.T) {
	r1 := New([]int{0}, []int{1})
	r2 := New([]int{1}, []int{0})
	d := FromRankings(r1, r2)
	if d.N != 2 || d.M() != 2 {
		t.Fatalf("FromRankings: N=%d M=%d, want 2, 2", d.N, d.M())
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !d.Complete() {
		t.Error("dataset over same elements should be Complete")
	}
}

func TestDatasetIncomplete(t *testing.T) {
	r1 := New([]int{0}, []int{1})
	r2 := New([]int{2})
	d := FromRankings(r1, r2)
	if d.Complete() {
		t.Error("dataset with partial rankings must not be Complete")
	}
	if got, want := d.ElementsInAll(), []int(nil); !reflect.DeepEqual(got, want) {
		t.Errorf("ElementsInAll = %v, want %v", got, want)
	}
	if got, want := d.ElementsInAny(), []int{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("ElementsInAny = %v, want %v", got, want)
	}
}

func TestDatasetValidateOutsideUniverse(t *testing.T) {
	d := NewDataset(2, New([]int{0}, []int{5}))
	if err := d.Validate(); err == nil {
		t.Error("Validate must reject element outside universe")
	}
}

func TestUniverse(t *testing.T) {
	u := NewUniverse()
	a := u.ID("A")
	b := u.ID("B")
	if a == b {
		t.Fatal("distinct names got same ID")
	}
	if got := u.ID("A"); got != a {
		t.Error("repeated name got a new ID")
	}
	if got := u.Name(a); got != "A" {
		t.Errorf("Name(%d) = %q, want A", a, got)
	}
	if _, ok := u.Lookup("C"); ok {
		t.Error("Lookup of unknown name reported ok")
	}
	if u.Size() != 2 {
		t.Errorf("Size = %d, want 2", u.Size())
	}
}

func TestParseBracket(t *testing.T) {
	u := NewUniverse()
	r, err := ParseRanking("[{A},{B,C}]", u)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Format(r); got != "[{A},{B,C}]" {
		t.Errorf("Format = %q", got)
	}
	if r.NumBuckets() != 2 || r.Len() != 3 {
		t.Errorf("parsed shape wrong: %v", r)
	}
}

func TestParseCompact(t *testing.T) {
	u := NewUniverse()
	r, err := ParseRanking("A > B=C > D", u)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.Format(r); got != "[{A},{B,C},{D}]" {
		t.Errorf("Format = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "[{A}", "[A}]", "[{}]", "[{A},{A}]", "A>>B"} {
		u := NewUniverse()
		if _, err := ParseRanking(s, u); err == nil {
			t.Errorf("ParseRanking(%q) succeeded, want error", s)
		}
	}
}

func TestParseDatasetRoundTrip(t *testing.T) {
	in := "# comment\n[{A},{D},{B,C}]\n[{A},{B,C},{D}]\n\n[{D},{A,C},{B}]\n"
	d, u, err := ParseDataset(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if d.M() != 3 || d.N != 4 {
		t.Fatalf("M=%d N=%d, want 3, 4", d.M(), d.N)
	}
	var buf bytes.Buffer
	if err := WriteDataset(&buf, d, u); err != nil {
		t.Fatal(err)
	}
	want := "[{A},{D},{B,C}]\n[{A},{B,C},{D}]\n[{D},{A,C},{B}]\n"
	if buf.String() != want {
		t.Errorf("WriteDataset = %q, want %q", buf.String(), want)
	}
}

// randomRanking builds a random valid ranking over elements 0..n-1.
func randomRanking(rng *rand.Rand, n int) *Ranking {
	perm := rng.Perm(n)
	r := &Ranking{}
	for i := 0; i < n; {
		sz := 1 + rng.Intn(3)
		if i+sz > n {
			sz = n - i
		}
		r.Buckets = append(r.Buckets, append([]int(nil), perm[i:i+sz]...))
		i += sz
	}
	return r
}

func TestQuickPositionsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		n := 1 + int(seed%20+20)%20
		r := randomRanking(rng, n)
		return FromPositions(r.Positions(n)).Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		n := 1 + rng.Intn(12)
		r := randomRanking(rng, n)
		u := NewUniverse()
		// Names "0".."11" map to IDs in first-seen order, so rebuild via a
		// dataset-level universe keyed by the numeric name.
		parsed, err := ParseRanking(r.String(), u)
		if err != nil {
			t.Fatalf("parse %q: %v", r.String(), err)
		}
		if parsed.Len() != r.Len() || parsed.NumBuckets() != r.NumBuckets() {
			t.Fatalf("round trip changed shape: %v vs %v", parsed, r)
		}
	}
}

// Command rankagg aggregates rankings with ties from a file (or stdin) into
// a consensus ranking through the context-aware Session API.
//
// Usage:
//
//	rankagg [-algo name] [-normalize unify|unify-broken|project|k-unify] [-k N]
//	        [-format text|csv] [-eps E] [-timeout D] [-workers N] [-seed S]
//	        [-restarts N] [-approx-mode auto|force|off] [-json] [file]
//	rankagg -list
//
// Text input holds one ranking per line in bracket notation ("[{A},{B,C}]")
// or compact notation ("A > B=C"); '#' starts a comment. CSV input
// (-format csv) holds "source,item,score" rows: one ranking with ties per
// source, items within -eps of a score level tied. When rankings cover
// different elements a normalization process must be chosen. The consensus
// and its generalized Kemeny score are printed (or a JSON document with
// -json).
//
// -timeout bounds the aggregation: on expiry the best incumbent found so
// far is printed and marked deadline-hit. Ctrl-C cancels the run cleanly.
//
// -approx-mode governs the matrix-free approximation tier (lehmer,
// avgrank, scores). Under auto (the default) a dataset whose projected
// pair matrix exceeds the 12·4096² byte budget is diverted to the tier
// with a substituted algorithm and a stderr note; force runs every
// aggregation matrix-free; off never diverts (explicitly requested
// matrix-free algorithms still run). Matrix-free runs accept incomplete
// datasets directly — no -normalize needed — and mark their JSON output
// with "approx": true.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"rankagg"
	"rankagg/internal/rankings"
)

func main() {
	algoName := flag.String("algo", "BioConsert", "aggregation algorithm (see -list)")
	norm := flag.String("normalize", "", "normalization for incomplete datasets: unify, unify-broken, project, or k-unify")
	kFlag := flag.Int("k", 2, "minimum rankings per element for -normalize k-unify")
	format := flag.String("format", "text", "input format: text or csv")
	eps := flag.Float64("eps", 0, "score tie tolerance for csv input")
	timeout := flag.Duration("timeout", 0, "aggregation time budget (0 = none); on expiry the best incumbent is printed")
	workers := flag.Int("workers", 0, "worker budget for parallel restarts/runs (0 = all CPUs)")
	seedFlag := flag.Int64("seed", 0, "seed for randomized algorithms")
	restarts := flag.Int("restarts", 0, "restart-pool size for multi-start algorithms (0 = algorithm default)")
	approxMode := flag.String("approx-mode", "auto", "matrix-free approximation tier: auto (divert datasets whose projected pair matrix exceeds 12*4096^2 bytes), force (always matrix-free), off (never divert)")
	jsonOut := flag.Bool("json", false, "emit a JSON result document")
	list := flag.Bool("list", false, "list available algorithms and exit")
	verbose := flag.Bool("v", false, "print dataset features, run statistics, and per-input distances")
	flag.Parse()

	if *list {
		for _, n := range rankagg.Algorithms() {
			fmt.Println(n)
		}
		return
	}
	switch *approxMode {
	case "auto", "force", "off":
	default:
		fatal(fmt.Errorf("unknown -approx-mode %q (auto, force, off)", *approxMode))
	}

	in := os.Stdin
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	var (
		d   *rankagg.Dataset
		u   *rankagg.Universe
		err error
	)
	switch *format {
	case "text":
		d, u, err = rankagg.ReadDataset(in)
	case "csv":
		d, u, err = rankagg.ParseScoreCSV(in, *eps)
	default:
		err = fmt.Errorf("unknown -format %q", *format)
	}
	if err != nil {
		fatal(err)
	}
	if d.M() == 0 {
		fatal(fmt.Errorf("no rankings in input"))
	}

	if !d.Complete() && *norm != "" {
		var toOld []int
		switch *norm {
		case "unify":
			d, toOld, _ = rankagg.Unify(d)
		case "unify-broken":
			d, toOld, _ = rankagg.UnifyBroken(d)
		case "project":
			d, toOld, _ = rankagg.Project(d)
		case "k-unify":
			d, toOld, _ = rankagg.KUnify(d, *kFlag)
		default:
			fatal(fmt.Errorf("unknown -normalize %q", *norm))
		}
		u = rankagg.SubUniverse(u, toOld)
	}
	if d.N == 0 {
		fatal(fmt.Errorf("normalization removed every element"))
	}

	// Tier admission, mirroring the server's router: explicit matrix-free
	// algorithms always take the approx path; otherwise auto diverts when
	// the projected pair matrix would blow the default serve budget.
	const approxBudget = 12 * 4096 * 4096 // cmd/serve's default -max-elements budget
	runName := *algoName
	approxTier := rankagg.MatrixFree(runName)
	if !approxTier {
		switch *approxMode {
		case "force":
			runName = rankagg.ApproxDefault(d)
			approxTier = true
		case "auto":
			if need := rankagg.PredictMatrixBytes(rankagg.MatrixAuto, d.N, d.M(), d.Complete()); need > approxBudget {
				runName = rankagg.ApproxDefault(d)
				approxTier = true
				fmt.Fprintf(os.Stderr, "rankagg: projected pair matrix (%d bytes) exceeds the %d-byte budget; aggregating matrix-free with %s (-approx-mode off forces the exact tier)\n",
					need, int64(approxBudget), runName)
			}
		}
	}
	if !d.Complete() && !approxTier {
		fatal(fmt.Errorf("rankings cover different elements; pass -normalize unify|unify-broken|project|k-unify or a matrix-free algorithm (lehmer, avgrank, scores)"))
	}

	// Ctrl-C cancels the run; -timeout becomes a deadline that keeps the
	// incumbent.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	// The CLI, the library, and the server all run from the same canonical
	// RunSpec, so a flag set here reproduces a server request bit-for-bit
	// (Normalize resolves the defaults in one place — an unset -seed is the
	// same run as -seed 0).
	spec := rankagg.RunSpec{
		Algorithm: runName,
		Seed:      seedFlag,
		Restarts:  *restarts,
	}
	var opts []rankagg.Option
	if *timeout > 0 {
		opts = append(opts, rankagg.WithTimeLimit(*timeout))
	}
	var res *rankagg.Result
	if approxTier {
		res, err = rankagg.RunMatrixFreeSpec(ctx, spec, d, append(opts, rankagg.WithWorkers(*workers))...)
	} else {
		var sess *rankagg.Session
		sess, err = rankagg.NewSession(d, rankagg.WithWorkers(*workers))
		if err != nil {
			fatal(err)
		}
		res, err = sess.RunSpec(ctx, spec, opts...)
	}
	if err != nil {
		fatal(err)
	}
	consensus := res.Consensus

	if *jsonOut {
		printJSON(res, u, d)
		return
	}
	fmt.Println(u.Format(consensus))
	fmt.Printf("generalized Kemeny score: %d\n", res.Score)
	if res.Approx {
		fmt.Printf("matrix-free approximation (%s): no pair matrix was built\n", res.Algorithm)
	}
	if res.DeadlineHit {
		fmt.Printf("time budget hit after %v: best incumbent shown (not a completed run)\n", res.Elapsed.Round(time.Millisecond))
	} else if res.Proved {
		fmt.Println("optimality proved")
	}
	if *verbose {
		f := rankagg.ExtractFeatures(d)
		fmt.Printf("n=%d m=%d similarity=%.3f largeTies=%v\n", f.N, f.M, f.Similarity, f.LargeTies)
		fmt.Printf("elapsed=%v restarts=%d nodes=%d iterations=%d dataset=%s\n",
			res.Elapsed.Round(time.Microsecond), res.Stats.Restarts, res.Stats.Nodes, res.Stats.Iterations, d.Hash())
		for i, r := range d.Rankings {
			fmt.Printf("G(consensus, input %d) = %d\n", i+1, rankagg.Dist(consensus, r, d.N))
		}
		for _, rec := range rankagg.Recommend(f, false, false) {
			fmt.Printf("recommended: %s — %s\n", rec.Algorithm, rec.Reason)
		}
	}
}

// jsonResult is the -json output document.
type jsonResult struct {
	Algorithm   string     `json:"algorithm"`
	Score       int64      `json:"score"`
	Approx      bool       `json:"approx,omitempty"`
	Proved      bool       `json:"proved"`
	DeadlineHit bool       `json:"deadline_hit,omitempty"`
	ElapsedMS   float64    `json:"elapsed_ms"`
	DatasetHash string     `json:"dataset_hash"`
	Similarity  float64    `json:"similarity"`
	N           int        `json:"n"`
	M           int        `json:"m"`
	Consensus   [][]string `json:"consensus"`
}

func printJSON(r *rankagg.Result, u *rankagg.Universe, d *rankagg.Dataset) {
	res := jsonResult{
		Algorithm:   r.Algorithm,
		Score:       r.Score,
		Approx:      r.Approx,
		Proved:      r.Proved,
		DeadlineHit: r.DeadlineHit,
		ElapsedMS:   float64(r.Elapsed.Nanoseconds()) / 1e6,
		DatasetHash: d.Hash(),
		Similarity:  rankagg.Similarity(d),
		N:           d.N,
		M:           d.M(),
		Consensus:   rankings.BucketNames(r.Consensus, u),
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rankagg:", err)
	os.Exit(1)
}

package rankagg

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"

	"rankagg/internal/gen"
)

func sessionTestDataset(t *testing.T, m, n int, seed int64) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	return gen.UniformDataset(rng, m, n)
}

func newTestSession(t *testing.T, d *Dataset, opts ...Option) *Session {
	t.Helper()
	s, err := NewSession(d, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSessionPairsBuiltOnce is the engine-sharing acceptance check: two
// sequential runs on one session build the pair matrix exactly once.
func TestSessionPairsBuiltOnce(t *testing.T) {
	s := newTestSession(t, sessionTestDataset(t, 6, 20, 1))
	ctx := context.Background()
	r1, err := s.Run(ctx, "BordaCount")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.Run(ctx, "BioConsert")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Consensus == nil || r2.Consensus == nil {
		t.Fatal("runs must produce a consensus")
	}
	if s.builds != 1 {
		t.Fatalf("pair matrix built %d times, want exactly 1", s.builds)
	}
	if r2.Score > r1.Score {
		t.Errorf("BioConsert (%d) should not be worse than Borda (%d)", r2.Score, r1.Score)
	}
}

// TestSessionWithPairsSeedsCache verifies a caller-built matrix preempts
// the session's own build entirely.
func TestSessionWithPairsSeedsCache(t *testing.T) {
	d := sessionTestDataset(t, 5, 15, 2)
	p := NewPairs(d)
	s := newTestSession(t, d, WithPairs(p))
	if _, err := s.Run(context.Background(), "KwikSort"); err != nil {
		t.Fatal(err)
	}
	if s.builds != 0 {
		t.Fatalf("session built %d matrices despite WithPairs", s.builds)
	}
	if s.Pairs() != p {
		t.Fatal("session must serve the seeded matrix")
	}
}

// TestSessionResultFields pins the rich result on the paper's Section 2.2
// running example: the exact method proves the optimum of score 5.
func TestSessionResultFields(t *testing.T) {
	u := NewUniverse()
	r1, _ := ParseRanking("[{A},{D},{B,C}]", u)
	r2, _ := ParseRanking("[{A},{B,C},{D}]", u)
	r3, _ := ParseRanking("[{D},{A,C},{B}]", u)
	s := newTestSession(t, FromRankings(r1, r2, r3))
	res, err := s.Run(context.Background(), "ExactAlgorithm")
	if err != nil {
		t.Fatal(err)
	}
	if res.Score != 5 {
		t.Errorf("Score = %d, want the paper's optimum 5", res.Score)
	}
	if !res.Proved {
		t.Error("exact method must prove optimality on a 5-element instance")
	}
	if res.DeadlineHit {
		t.Error("no deadline was set")
	}
	if res.Algorithm != "ExactAlgorithm" {
		t.Errorf("Algorithm = %q", res.Algorithm)
	}
	if res.Elapsed <= 0 {
		t.Error("Elapsed must be positive")
	}
	if res.Score != Score(res.Consensus, s.Dataset()) {
		t.Error("Score must equal the recomputed generalized Kemeny score")
	}
}

// TestSessionDeadlineHit checks the uniform time-limit reporting: an
// expired budget yields the incumbent with Proved=false + DeadlineHit=true
// instead of an error, for both exact searches.
func TestSessionDeadlineHit(t *testing.T) {
	d := sessionTestDataset(t, 6, 16, 3)
	for _, name := range []string{"BnB", "ExactAlgorithm"} {
		s := newTestSession(t, d)
		res, err := s.Run(context.Background(), name, WithTimeLimit(time.Nanosecond))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Proved {
			t.Logf("%s: instance solved before the first deadline poll (acceptable)", name)
			continue
		}
		if !res.DeadlineHit {
			t.Errorf("%s: not proved and no DeadlineHit — inconsistent reporting", name)
		}
		if res.Consensus.Len() != d.N {
			t.Errorf("%s: incumbent covers %d of %d elements", name, res.Consensus.Len(), d.N)
		}
	}
}

// TestSessionRunCancelled is the cancellation acceptance check: every
// ctx-aware search returns within a tight bound after cancel, from
// mid-descent, on instances that would otherwise run for a very long time.
func TestSessionRunCancelled(t *testing.T) {
	cases := []struct {
		name string
		m, n int
	}{
		{"BnB", 7, 40},            // unbounded permutation DFS
		{"ExactAlgorithm", 7, 40}, // unbounded ties-aware DFS
		{"ExactLPB", 7, 12},       // LPB branch & bound at its size cap
		{"BioConsert", 25, 500},   // restart pool over long descents
		{"Anneal", 10, 400},       // 60 sweeps × 8n moves
		{"MC4", 7, 500},           // O(n²·m) chain build + power iteration
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			d := sessionTestDataset(t, tc.m, tc.n, 4)
			s := newTestSession(t, d)
			s.Pairs() // exclude the (non-cancellable) matrix build from the bound
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(30 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			res, err := s.Run(ctx, tc.name)
			elapsed := time.Since(start)
			if elapsed > 3*time.Second {
				t.Fatalf("cancelled run returned after %v — polling too coarse", elapsed)
			}
			if err == nil {
				// Finished soundly around the cancel — only plausible if fast.
				if res == nil || res.Consensus == nil {
					t.Fatal("nil result without error")
				}
				t.Logf("completed in %v around the cancellation", elapsed)
				return
			}
			if err != context.Canceled {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
		})
	}
}

// TestSessionConcurrentRuns exercises the shared-matrix contract under the
// race detector: many goroutines run algorithms on one session; the matrix
// is built exactly once and deterministic algorithms agree with themselves.
func TestSessionConcurrentRuns(t *testing.T) {
	d := sessionTestDataset(t, 8, 40, 5)
	s := newTestSession(t, d, WithWorkers(2))
	names := []string{"BioConsert", "KwikSortMin", "BordaCount", "RepeatChoiceMin"}
	const rounds = 3
	scores := make([][]int64, len(names))
	for i := range scores {
		scores[i] = make([]int64, rounds)
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(names)*rounds)
	for ni, name := range names {
		for round := 0; round < rounds; round++ {
			wg.Add(1)
			go func(ni, round int, name string) {
				defer wg.Done()
				res, err := s.Run(context.Background(), name)
				if err != nil {
					errs <- err
					return
				}
				scores[ni][round] = res.Score
			}(ni, round, name)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if s.builds != 1 {
		t.Fatalf("pair matrix built %d times under concurrency, want 1", s.builds)
	}
	for ni, name := range names {
		for round := 1; round < rounds; round++ {
			if scores[ni][round] != scores[ni][0] {
				t.Errorf("%s: concurrent runs disagree (%d vs %d)", name, scores[ni][round], scores[ni][0])
			}
		}
	}
}

// TestSessionWorkerCountInvariance pins the determinism contract of the
// parallel independent-run pools: the worker budget must not change the
// consensus.
func TestSessionWorkerCountInvariance(t *testing.T) {
	d := sessionTestDataset(t, 6, 30, 6)
	for _, name := range []string{"KwikSortMin", "RepeatChoiceMin", "BioConsert"} {
		var ref *Result
		for _, workers := range []int{1, 2, 4} {
			s := newTestSession(t, d, WithWorkers(workers))
			res, err := s.Run(context.Background(), name, WithSeed(11))
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if !res.Consensus.Equal(ref.Consensus) {
				t.Errorf("%s: consensus differs between worker budgets", name)
			}
		}
	}
}

// TestSessionHash checks the content hash: stable across sessions on equal
// data, different on different data, and insensitive to within-bucket
// element order (ties are unordered sets).
func TestSessionHash(t *testing.T) {
	d1 := NewDataset(3, NewRanking([]int{0, 1}, []int{2}), NewRanking([]int{2}, []int{0, 1}))
	d2 := NewDataset(3, NewRanking([]int{1, 0}, []int{2}), NewRanking([]int{2}, []int{0, 1}))
	d3 := NewDataset(3, NewRanking([]int{0}, []int{1}, []int{2}), NewRanking([]int{2}, []int{0, 1}))
	s1 := newTestSession(t, d1)
	s2 := newTestSession(t, d2)
	s3 := newTestSession(t, d3)
	if s1.Hash() != s2.Hash() {
		t.Error("within-bucket order must not change the hash")
	}
	if s1.Hash() == s3.Hash() {
		t.Error("different bucket structure must change the hash")
	}
	if len(s1.Hash()) != 32 {
		t.Errorf("hash length = %d, want 32 hex chars", len(s1.Hash()))
	}
}

// TestSessionRejectsIncomplete mirrors the algorithms' input contract at
// session construction time.
func TestSessionRejectsIncomplete(t *testing.T) {
	d := NewDataset(3, NewRanking([]int{0}, []int{1}), NewRanking([]int{2}, []int{0, 1}))
	if _, err := NewSession(d); err == nil {
		t.Fatal("incomplete dataset must be rejected (normalize first)")
	}
}

// TestSessionUnknownAlgorithm keeps the registry error path.
func TestSessionUnknownAlgorithm(t *testing.T) {
	s := newTestSession(t, sessionTestDataset(t, 4, 8, 7))
	if _, err := s.Run(context.Background(), "NoSuchAlgo"); err == nil {
		t.Fatal("unknown algorithm must error")
	}
}

// TestSessionEveryRegisteredAlgorithm runs the full registry through the
// Session entry point on a small instance: the adapter fallbacks must keep
// all algorithms working.
func TestSessionEveryRegisteredAlgorithm(t *testing.T) {
	d := sessionTestDataset(t, 5, 9, 8)
	s := newTestSession(t, d)
	for _, name := range Algorithms() {
		res, err := s.Run(context.Background(), name)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Consensus.Len() != d.N {
			t.Errorf("%s: consensus covers %d of %d elements", name, res.Consensus.Len(), d.N)
		}
		if res.Score != Score(res.Consensus, d) {
			t.Errorf("%s: Score mismatch", name)
		}
	}
}

// TestSessionMatrixMode pins the WithMatrixMode plumbing on the public
// API: the session builds its matrix in the configured representation,
// MatrixBytes reports the real backing size, and the consensus and score
// are identical across backends (the counts are, property-tested in
// internal/kendall; this asserts it end to end through Run).
func TestSessionMatrixMode(t *testing.T) {
	d := sessionTestDataset(t, 6, 12, 11)
	ctx := context.Background()

	wide := newTestSession(t, d, WithMatrixMode(MatrixInt32))
	wantWide := int64(3 * 4 * 12 * 12)
	resWide, err := wide.Run(ctx, "BioConsert")
	if err != nil {
		t.Fatal(err)
	}
	if got := wide.MatrixBytes(); got != wantWide {
		t.Errorf("int32 MatrixBytes = %d, want %d", got, wantWide)
	}

	// Complete dataset: m ≤ 127 resolves auto (and int8) to int8 + derived
	// tied = 2 bytes/pair; the pinned int16 floor costs twice that.
	for _, tc := range []struct {
		mode  MatrixMode
		bytes int64
	}{
		{MatrixAuto, 2 * 1 * 12 * 12},
		{MatrixInt8, 2 * 1 * 12 * 12},
		{MatrixInt16, 2 * 2 * 12 * 12},
	} {
		mode := tc.mode
		s := newTestSession(t, d, WithMatrixMode(mode))
		res, err := s.Run(ctx, "BioConsert")
		if err != nil {
			t.Fatal(err)
		}
		if got := s.MatrixBytes(); got != tc.bytes {
			t.Errorf("mode %v MatrixBytes = %d, want %d", mode, got, tc.bytes)
		}
		if res.Score != resWide.Score || !res.Consensus.Equal(resWide.Consensus) {
			t.Errorf("mode %v: consensus diverges from the int32 backend", mode)
		}
		if got := PredictMatrixBytes(mode, 12, 6, true); got != s.MatrixBytes() {
			t.Errorf("PredictMatrixBytes = %d, want %d", got, s.MatrixBytes())
		}
	}
}

package cache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"rankagg"
	"rankagg/internal/rankings"
)

// testResult fabricates a consensus result whose ranking has nBuckets
// singleton buckets — enough structure for resultWeight to vary.
func testResult(score int64, nBuckets int) *rankagg.Result {
	r := &rankings.Ranking{}
	for i := 0; i < nBuckets; i++ {
		r.Buckets = append(r.Buckets, []int{i})
	}
	return &rankagg.Result{Algorithm: "BioConsert", Score: score, Consensus: r}
}

func runnerOf(res *rankagg.Result, version uint64, calls *int64) func() (*rankagg.Result, uint64, error) {
	return func() (*rankagg.Result, uint64, error) {
		atomic.AddInt64(calls, 1)
		return res, version, nil
	}
}

func TestConsensusGetOrRunCachesAndCounts(t *testing.T) {
	c := NewConsensus(0)
	var calls int64
	want := testResult(42, 6)

	res, hit, err := c.GetOrRun("ds1", "spec1", runnerOf(want, 1, &calls))
	if err != nil || hit || res != want {
		t.Fatalf("first lookup: res=%p hit=%v err=%v", res, hit, err)
	}
	res, hit, err = c.GetOrRun("ds1", "spec1", runnerOf(nil, 0, &calls))
	if err != nil || !hit || res != want {
		t.Fatalf("second lookup: res=%p hit=%v err=%v", res, hit, err)
	}
	if calls != 1 {
		t.Fatalf("solver ran %d times, want 1", calls)
	}
	// Another spec on the same dataset is a distinct entry.
	other := testResult(50, 6)
	if _, hit, _ := c.GetOrRun("ds1", "spec2", runnerOf(other, 1, &calls)); hit {
		t.Fatal("different spec key must miss")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Runs != 2 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}

	// Errors propagate and cache nothing.
	boom := errors.New("boom")
	if _, _, err := c.GetOrRun("ds9", "s", func() (*rankagg.Result, uint64, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, hit, _ := c.GetOrRun("ds9", "s", runnerOf(want, 1, &calls)); hit {
		t.Fatal("a failed run must not be cached")
	}
}

// TestConsensusSingleFlightStorm launches a burst of identical lookups
// against a slow solver: exactly one run must execute and every caller
// must receive its result.
func TestConsensusSingleFlightStorm(t *testing.T) {
	c := NewConsensus(0)
	var calls int64
	want := testResult(7, 4)
	gate := make(chan struct{})

	const waiters = 32
	var wg sync.WaitGroup
	results := make([]*rankagg.Result, waiters)
	errs := make([]error, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = c.GetOrRun("ds", "spec", func() (*rankagg.Result, uint64, error) {
				atomic.AddInt64(&calls, 1)
				<-gate // hold every coalesced waiter until all goroutines queued
				return want, 3, nil
			})
		}(i)
	}
	close(gate)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("storm ran the solver %d times, want 1", calls)
	}
	for i := 0; i < waiters; i++ {
		if errs[i] != nil || results[i] != want {
			t.Fatalf("waiter %d: res=%p err=%v", i, results[i], errs[i])
		}
	}
}

// TestConsensusByteBudgetEviction pins LRU eviction order under the byte
// budget: oldest-untouched entries go first, a just-touched entry
// survives, and the just-inserted entry is never the victim.
func TestConsensusByteBudgetEviction(t *testing.T) {
	w := resultWeight(testResult(0, 4))
	c := NewConsensus(3 * w) // room for exactly three entries

	for i := 0; i < 3; i++ {
		var calls int64
		c.GetOrRun("ds", fmt.Sprintf("s%d", i), runnerOf(testResult(int64(i), 4), 1, &calls))
	}
	// Touch s0 so s1 becomes the LRU victim.
	if _, hit, _ := c.GetOrRun("ds", "s0", nil); !hit {
		t.Fatal("s0 should be cached")
	}
	var calls int64
	c.GetOrRun("ds", "s3", runnerOf(testResult(3, 4), 1, &calls))

	if c.Len() != 3 {
		t.Fatalf("len = %d, want 3", c.Len())
	}
	// Probe with a DeadlineHit runner so a miss inserts nothing and the
	// probes cannot themselves evict entries still awaiting their check.
	probe := testResult(99, 4)
	probe.DeadlineHit = true
	for spec, want := range map[string]bool{"s0": true, "s1": false, "s2": true, "s3": true} {
		_, hit, _ := c.GetOrRun("ds", spec, runnerOf(probe, 1, &calls))
		if hit != want {
			t.Errorf("spec %s cached=%v, want %v (LRU order violated)", spec, hit, want)
		}
	}
	if st := c.Stats(); st.Evictions < 1 {
		t.Errorf("evictions = %d, want >= 1", st.Evictions)
	}
	// An over-budget entry still serves: inserted, never self-evicted.
	small := NewConsensus(1)
	small.GetOrRun("ds", "big", runnerOf(testResult(1, 64), 1, &calls))
	if small.Len() != 1 {
		t.Fatalf("over-budget entry evicted itself (len=%d)", small.Len())
	}
}

// TestConsensusDeadlineNotCachedApproxCached verifies timing-dependent
// results are returned but never stored, while deterministic matrix-free
// results are first-class cache citizens (Put included).
func TestConsensusDeadlineNotCachedApproxCached(t *testing.T) {
	c := NewConsensus(0)
	var calls int64

	dh := testResult(5, 3)
	dh.DeadlineHit = true
	c.GetOrRun("ds", "s", runnerOf(dh, 1, &calls))
	if _, hit, _ := c.GetOrRun("ds", "s", runnerOf(testResult(5, 3), 1, &calls)); hit {
		t.Error("DeadlineHit result was cached")
	}

	ap := testResult(5, 3)
	ap.Approx = true
	c.GetOrRun("ds", "a", runnerOf(ap, 1, &calls))
	if res, hit, _ := c.GetOrRun("ds", "a", nil); !hit || res != ap {
		t.Error("Approx result was not cached")
	}
	ap2 := testResult(6, 3)
	ap2.Approx = true
	c.Put("ds", "a2", 1, ap2)
	if res, hit, _ := c.GetOrRun("ds", "a2", nil); !hit || res != ap2 {
		t.Error("Put refused an Approx result")
	}
}

// TestConsensusInvalidateHarvestsWarmHint checks the PATCH flow:
// InvalidateDataset drops every entry of the hash and returns the
// best-scoring consensus, which PutWarmHint plants under the new hash
// and TakeWarmHint consumes exactly once.
func TestConsensusInvalidateHarvestsWarmHint(t *testing.T) {
	c := NewConsensus(0)
	var calls int64
	best := testResult(10, 4)
	c.GetOrRun("old", "s1", runnerOf(testResult(30, 4), 1, &calls))
	c.GetOrRun("old", "s2", runnerOf(best, 1, &calls))
	c.GetOrRun("old", "s3", runnerOf(testResult(20, 4), 1, &calls))
	c.GetOrRun("other", "s1", runnerOf(testResult(1, 4), 1, &calls))

	dropped, warm := c.InvalidateDataset("old")
	if dropped != 3 || warm != best {
		t.Fatalf("dropped=%d warm=%p, want 3 and the lowest-score entry", dropped, warm)
	}
	if _, hit, _ := c.GetOrRun("old", "s2", runnerOf(testResult(10, 4), 1, &calls)); hit {
		t.Error("invalidated entry still served")
	}
	if _, hit, _ := c.GetOrRun("other", "s1", nil); !hit {
		t.Error("invalidation leaked onto another dataset")
	}

	c.PutWarmHint("new", warm, 2)
	if n, hint := c.DatasetEntries("new"); n != 0 || !hint {
		t.Fatalf("DatasetEntries(new) = %d,%v, want 0,true", n, hint)
	}
	if got := c.TakeWarmHint("new"); got != warm {
		t.Fatalf("TakeWarmHint = %p, want the planted hint", got)
	}
	if got := c.TakeWarmHint("new"); got != nil {
		t.Fatal("warm hint must be consume-once")
	}
	// Invalidating a dataset that only has a pending hint drops it
	// without returning it — it describes an even older version.
	c.PutWarmHint("new", warm, 2)
	dropped, warm2 := c.InvalidateDataset("new")
	if dropped != 0 || warm2 != nil {
		t.Fatalf("hint-only invalidation: dropped=%d warm=%p, want 0,nil", dropped, warm2)
	}
	if c.TakeWarmHint("new") != nil {
		t.Fatal("stale hint survived invalidation")
	}
}

// TestConsensusInvalidationRace hammers GetOrRun and InvalidateDataset
// concurrently under -race: the cache must stay consistent (no torn
// bookkeeping, Bytes matches the entries) whatever interleaving occurs.
func TestConsensusInvalidationRace(t *testing.T) {
	c := NewConsensus(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ds := fmt.Sprintf("ds%d", i%4)
				var calls int64
				c.GetOrRun(ds, fmt.Sprintf("s%d", g%3), runnerOf(testResult(int64(i), 5), uint64(i), &calls))
				if i%7 == 0 {
					if _, warm := c.InvalidateDataset(ds); warm != nil {
						c.PutWarmHint(ds+"'", warm, uint64(i))
					}
				}
				if i%11 == 0 {
					c.TakeWarmHint(ds + "'")
				}
			}
		}(g)
	}
	wg.Wait()
	// Byte accounting must agree with the surviving entries.
	want := int64(c.Len()) * resultWeight(testResult(0, 5))
	if got := c.Bytes(); got != want {
		t.Fatalf("bytes = %d, want %d for %d entries", got, want, c.Len())
	}
}

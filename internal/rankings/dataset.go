package rankings

import (
	"fmt"
	"sort"
)

// Dataset is a set of input rankings, the object every aggregation algorithm
// consumes ("a dataset systematically denotes a set of input rankings R" in
// the paper). N is the size of the element universe: element IDs are in
// [0, N). Individual rankings may cover only a subset of the universe until a
// normalization process (package normalize) is applied.
type Dataset struct {
	N        int
	Rankings []*Ranking
}

// NewDataset builds a dataset over a universe of n elements.
func NewDataset(n int, rks ...*Ranking) *Dataset {
	return &Dataset{N: n, Rankings: rks}
}

// FromRankings builds a dataset whose universe is exactly large enough to
// hold every element mentioned by the given rankings.
func FromRankings(rks ...*Ranking) *Dataset {
	n := 0
	for _, r := range rks {
		if m := r.MaxElement() + 1; m > n {
			n = m
		}
	}
	return &Dataset{N: n, Rankings: rks}
}

// M returns the number of rankings in the dataset.
func (d *Dataset) M() int { return len(d.Rankings) }

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	rks := make([]*Ranking, len(d.Rankings))
	for i, r := range d.Rankings {
		rks[i] = r.Clone()
	}
	return &Dataset{N: d.N, Rankings: rks}
}

// Validate checks every ranking and that all element IDs fit the universe.
func (d *Dataset) Validate() error {
	if d.N < 0 {
		return fmt.Errorf("rankings: negative universe size %d", d.N)
	}
	for i, r := range d.Rankings {
		if err := r.Validate(); err != nil {
			return fmt.Errorf("ranking %d: %w", i, err)
		}
		if m := r.MaxElement(); m >= d.N {
			return fmt.Errorf("ranking %d: element %d outside universe [0,%d)", i, m, d.N)
		}
	}
	return nil
}

// Complete reports whether every ranking covers the whole universe, i.e. the
// dataset is normalized ("over the same elements"). Most algorithms require
// this.
func (d *Dataset) Complete() bool {
	for _, r := range d.Rankings {
		if r.Len() != d.N {
			return false
		}
	}
	return true
}

// PositionMatrix returns, for each ranking, its Positions slice (1-based
// bucket index per element, 0 = absent). The result is indexed
// [ranking][element].
func (d *Dataset) PositionMatrix() [][]int {
	out := make([][]int, len(d.Rankings))
	for i, r := range d.Rankings {
		out[i] = r.Positions(d.N)
	}
	return out
}

// ElementsInAll returns the IDs present in every ranking, ascending.
func (d *Dataset) ElementsInAll() []int {
	if len(d.Rankings) == 0 {
		return nil
	}
	count := make([]int, d.N)
	for _, r := range d.Rankings {
		for _, b := range r.Buckets {
			for _, e := range b {
				count[e]++
			}
		}
	}
	var out []int
	for e, c := range count {
		if c == len(d.Rankings) {
			out = append(out, e)
		}
	}
	return out
}

// ElementsInAny returns the IDs present in at least one ranking, ascending.
func (d *Dataset) ElementsInAny() []int {
	present := make([]bool, d.N)
	for _, r := range d.Rankings {
		for _, b := range r.Buckets {
			for _, e := range b {
				present[e] = true
			}
		}
	}
	var out []int
	for e, p := range present {
		if p {
			out = append(out, e)
		}
	}
	return out
}

// Universe maintains a bidirectional mapping between external element names
// and dense integer IDs. It is the boundary type used by parsers and CLIs;
// the algorithms themselves only see IDs.
type Universe struct {
	ids   map[string]int
	names []string
}

// NewUniverse returns an empty universe.
func NewUniverse() *Universe {
	return &Universe{ids: make(map[string]int)}
}

// ID returns the ID for name, allocating a new one on first sight.
func (u *Universe) ID(name string) int {
	if id, ok := u.ids[name]; ok {
		return id
	}
	id := len(u.names)
	u.ids[name] = id
	u.names = append(u.names, name)
	return id
}

// Lookup returns the ID for name and whether it is known.
func (u *Universe) Lookup(name string) (int, bool) {
	id, ok := u.ids[name]
	return id, ok
}

// Name returns the name for an ID, or a numeric fallback for unknown IDs.
func (u *Universe) Name(id int) string {
	if id >= 0 && id < len(u.names) {
		return u.names[id]
	}
	return fmt.Sprintf("#%d", id)
}

// Size returns the number of named elements.
func (u *Universe) Size() int { return len(u.names) }

// Names returns a copy of all names, indexed by ID.
func (u *Universe) Names() []string { return append([]string(nil), u.names...) }

// Format renders a ranking with element names from the universe, e.g.
// [{A},{B,C}]. Buckets are rendered with names sorted for determinism.
func (u *Universe) Format(r *Ranking) string {
	out := "["
	for i, b := range r.Buckets {
		if i > 0 {
			out += ","
		}
		names := make([]string, len(b))
		for j, e := range b {
			names[j] = u.Name(e)
		}
		sort.Strings(names)
		out += "{"
		for j, nm := range names {
			if j > 0 {
				out += ","
			}
			out += nm
		}
		out += "}"
	}
	return out + "]"
}

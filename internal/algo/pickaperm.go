package algo

import (
	"rankagg/internal/core"
	"rankagg/internal/kendall"
	"rankagg/internal/rankings"
)

// PickAPerm implements the de-randomized Pick-a-Perm of Ailon et al. [2] /
// Schalekamp & van Zuylen [31]: it returns the input ranking with minimal
// generalized Kemeny score. It is a 2-approximation and works unchanged
// with ties ("can produce ties: yes" in Table 1) since it simply returns
// one of the inputs.
type PickAPerm struct{}

// Name implements core.Aggregator.
func (PickAPerm) Name() string { return "Pick-a-Perm" }

// Aggregate implements core.Aggregator.
func (a PickAPerm) Aggregate(d *rankings.Dataset) (*rankings.Ranking, error) {
	return a.AggregateWithPairs(d, nil)
}

// AggregateWithPairs implements core.PairsAggregator: a nil p is computed
// from d, a non-nil p must be the pair matrix of d.
func (PickAPerm) AggregateWithPairs(d *rankings.Dataset, p *kendall.Pairs) (*rankings.Ranking, error) {
	if err := core.CheckInput(d); err != nil {
		return nil, err
	}
	if p == nil {
		p = kendall.NewPairs(d)
	}
	best := d.Rankings[0]
	bestScore := p.Score(best)
	for _, r := range d.Rankings[1:] {
		if s := p.Score(r); s < bestScore {
			best, bestScore = r, s
		}
	}
	return best.Clone(), nil
}

func init() {
	core.Register("Pick-a-Perm", func() core.Aggregator { return PickAPerm{} })
}

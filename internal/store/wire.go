package store

import (
	"rankagg"
	"rankagg/internal/rankings"
)

// snapshotWire is the on-disk form of a dataset's base snapshot
// (snapshot.json): the rankings wire form plus the store's replay anchors.
// Seq is the sequence number of the last delta-log record folded into this
// snapshot — replay skips records at or below it, which is what makes
// compaction crash-safe: a new snapshot committed before the log is
// truncated simply makes the old records no-ops. Version is the cumulative
// mutation count (rankings added + removed) at fold time, so the version a
// restarted process reports continues the pre-restart numbering.
type snapshotWire struct {
	Hash     string              `json:"hash"`
	Version  uint64              `json:"version"`
	Seq      int64               `json:"seq"`
	N        int                 `json:"n"`
	Names    []string            `json:"names,omitempty"`
	Rankings []*rankings.Ranking `json:"rankings"`
}

// logRecord is the payload of one delta-log record. Op "patch" carries one
// atomic delta (removals applied before additions, exactly
// Session.ApplyDelta's semantics — a batch PATCH is ONE record); op
// "tombstone" marks the dataset deleted, making a crash mid-removal
// recoverable (replay sees the tombstone and finishes the cleanup).
type logRecord struct {
	Seq    int64               `json:"seq"`
	Op     string              `json:"op"`
	Add    []*rankings.Ranking `json:"add,omitempty"`
	Remove []*rankings.Ranking `json:"remove,omitempty"`
}

const (
	opPatch     = "patch"
	opTombstone = "tombstone"
)

// ResultWire is the persisted form of an aggregation result — the
// consensus-cache entry that survives a restart. It carries exactly the
// result-describing fields (no timing): a restarted server answering from
// a persisted entry reports the same consensus, score and search stats the
// original solve did.
type ResultWire struct {
	Algorithm string              `json:"algorithm"`
	Consensus *rankings.Ranking   `json:"consensus"`
	Score     int64               `json:"score"`
	Proved    bool                `json:"proved"`
	Approx    bool                `json:"approx,omitempty"`
	Stats     rankagg.SearchStats `json:"stats"`
}

// WireFromResult converts a run result into its persisted form, or nil for
// results that must not be persisted (nil, no consensus or deadline-cut —
// the same exclusions the in-memory consensus cache applies). Approx-tier
// results persist like any other: they are deterministic for their
// (dataset, spec), and the Approx flag survives the round trip so a
// restarted server reports them honestly.
func WireFromResult(res *rankagg.Result) *ResultWire {
	if res == nil || res.Consensus == nil || res.DeadlineHit {
		return nil
	}
	return &ResultWire{
		Algorithm: res.Algorithm,
		Consensus: res.Consensus,
		Score:     res.Score,
		Proved:    res.Proved,
		Approx:    res.Approx,
		Stats:     res.Stats,
	}
}

// Result converts a persisted entry back into a run result.
func (w *ResultWire) Result() *rankagg.Result {
	if w == nil {
		return nil
	}
	return &rankagg.Result{
		Algorithm: w.Algorithm,
		Consensus: w.Consensus,
		Score:     w.Score,
		Proved:    w.Proved,
		Approx:    w.Approx,
		Stats:     w.Stats,
	}
}

// consensusFile is the on-disk form of a dataset's persisted consensus
// entries (consensus.json): the spec-keyed results valid for exactly the
// dataset state identified by Hash, plus at most one warm-start hint. When
// a restarting store finds Hash stale (a crash landed between the delta-log
// append and the consensus rewrite), the entries are not served — the best
// of them is demoted to the warm hint of the replayed current hash, exactly
// what the in-memory invalidation would have done.
type consensusFile struct {
	Hash    string                 `json:"hash"`
	Entries map[string]*ResultWire `json:"entries,omitempty"`
	Warm    *ResultWire            `json:"warm,omitempty"`
}

package kendall

import (
	"runtime"
	"sync"
	"sync/atomic"

	"rankagg/internal/rankings"
)

// Pairs holds, for every ordered pair of elements, the number of input
// rankings that order them each way or tie them. It is the O(n²)-memory
// substrate shared by most aggregation algorithms (BioConsert, KwikSort,
// FaginDyn, the exact methods, the LPB objective weights w_{a<b}, w_{a≤b},
// ...). Pairs where either element is absent from a ranking are not counted
// by that ranking.
//
// A Pairs value built by NewPairs is safe for concurrent readers: one
// matrix can be shared by any number of algorithms running in parallel
// (see core.AggregateWithPairs). The Add/Remove delta methods mutate the
// matrix in place and must never race with readers — mutating callers
// (rankagg.Session) Clone first so in-flight readers keep an immutable
// snapshot.
type Pairs struct {
	N int
	// M is the number of input rankings the matrix was built from.
	M int
	// Complete records whether every ranking covered the whole universe; it
	// then holds that Before(a,b) + Before(b,a) + Tied(a,b) = M for every
	// pair, an invariant hot loops exploit (see algo.searchState).
	Complete bool
	// Version counts the in-place mutations (Add/Remove) applied to this
	// value since its construction (a fresh build is version 0). Callers
	// that hand a matrix across a mutation boundary compare versions to
	// detect staleness; rankagg.Session additionally restamps it so a
	// session's matrix version always matches the session's own mutation
	// count.
	Version uint64
	// incomplete counts the rankings not covering the whole universe, so
	// Complete stays derivable (incomplete == 0) as rankings are added and
	// removed.
	incomplete int
	before     []int32 // before[a*N+b] = #rankings with a strictly before b
	after      []int32 // after[a*N+b] = before[b*N+a], kept for row-local reads
	tied       []int32 // tied[a*N+b] = #rankings with a and b in the same bucket
}

// NewPairs computes the pair matrix of a dataset. The accumulation iterates
// bucket-pair runs of each ranking (every counted pair costs exactly one
// increment, with no per-pair branching) and is sharded across
// runtime.NumCPU() workers with per-worker accumulators merged at the end,
// so the result is byte-identical to a sequential build.
func NewPairs(d *rankings.Dataset) *Pairs {
	return newPairsWorkers(d, 0)
}

// NewPairsLegacy is the seed's construction — branchy position compares
// over all n² element pairs per ranking, single-threaded. It is retained
// verbatim as the baseline cmd/bench measures the engine against (the
// BENCH_*.json trajectory); library code should always use NewPairs.
func NewPairsLegacy(d *rankings.Dataset) *Pairs {
	n := d.N
	p := &Pairs{
		N:          n,
		M:          len(d.Rankings),
		Complete:   d.Complete(),
		incomplete: countIncomplete(d),
		before:     make([]int32, n*n),
		after:      make([]int32, n*n),
		tied:       make([]int32, n*n),
	}
	for _, r := range d.Rankings {
		pos := r.Positions(n)
		for a := 0; a < n; a++ {
			if pos[a] == 0 {
				continue
			}
			for b := a + 1; b < n; b++ {
				if pos[b] == 0 {
					continue
				}
				switch {
				case pos[a] < pos[b]:
					p.before[a*n+b]++
				case pos[a] > pos[b]:
					p.before[b*n+a]++
				default:
					p.tied[a*n+b]++
					p.tied[b*n+a]++
				}
			}
		}
	}
	transpose(p.after, p.before, n)
	return p
}

// maxExtraAccBytes bounds the memory spent on per-worker accumulators; the
// worker count is lowered to fit (down to a sequential build).
const maxExtraAccBytes = 1 << 30

// newPairsWorkers is NewPairs with an explicit worker count (0 = NumCPU,
// 1 = sequential); tests use it to check parallel/sequential equality.
func newPairsWorkers(d *rankings.Dataset, workers int) *Pairs {
	n := d.N
	p := &Pairs{
		N:          n,
		M:          len(d.Rankings),
		Complete:   d.Complete(),
		incomplete: countIncomplete(d),
		before:     make([]int32, n*n),
		after:      make([]int32, n*n),
		tied:       make([]int32, n*n),
	}
	m := len(d.Rankings)
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > m {
		workers = m
	}
	for workers > 1 && int64(workers-1)*int64(n)*int64(n)*8 > maxExtraAccBytes {
		workers--
	}
	if workers <= 1 || n < 2 {
		for _, r := range d.Rankings {
			accumulatePairs(p.before, p.tied, n, r)
		}
	} else {
		// Worker 0 accumulates straight into p; the others get their own
		// arrays, summed into p afterwards. int32 addition commutes, so any
		// schedule produces identical counts.
		extras := make([][2][]int32, workers-1)
		var next int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			before, tied := p.before, p.tied
			if w > 0 {
				before = make([]int32, n*n)
				tied = make([]int32, n*n)
				extras[w-1] = [2][]int32{before, tied}
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= m {
						return
					}
					accumulatePairs(before, tied, n, d.Rankings[i])
				}
			}()
		}
		wg.Wait()
		for _, acc := range extras {
			addInto(p.before, acc[0])
			addInto(p.tied, acc[1])
		}
	}
	transpose(p.after, p.before, n)
	return p
}

// accumulatePairs adds one ranking's pair counts. For each bucket, every
// member ties with its bucket-mates and precedes every element of every
// later bucket — absent elements are simply never visited, and the diagonal
// stays zero (the self-tie increment is undone without a branch). The
// ranking is flattened first so the hot loop is a single run over a
// contiguous suffix.
func accumulatePairs(before, tied []int32, n int, r *rankings.Ranking) {
	bs := r.Buckets
	flat := make([]int, 0, n)
	for _, b := range bs {
		flat = append(flat, b...)
	}
	off := 0
	for _, bi := range bs {
		off += len(bi)
		rest := flat[off:] // elements of all later buckets
		for _, a := range bi {
			trow := tied[a*n : a*n+n]
			for _, b := range bi {
				trow[b]++
			}
			trow[a]--
			brow := before[a*n : a*n+n]
			for _, b := range rest {
				brow[b]++
			}
		}
	}
}

// countIncomplete returns how many rankings do not cover the whole
// universe, the counter behind the Complete flag's delta maintenance.
func countIncomplete(d *rankings.Dataset) int {
	c := 0
	for _, r := range d.Rankings {
		if r.Len() != d.N {
			c++
		}
	}
	return c
}

func addInto(dst, src []int32) {
	for i, v := range src {
		dst[i] += v
	}
}

// transpose fills dst with the transpose of src (n×n), in cache-friendly
// blocks.
func transpose(dst, src []int32, n int) {
	const tb = 64
	for i0 := 0; i0 < n; i0 += tb {
		iMax := i0 + tb
		if iMax > n {
			iMax = n
		}
		for j0 := 0; j0 < n; j0 += tb {
			jMax := j0 + tb
			if jMax > n {
				jMax = n
			}
			for i := i0; i < iMax; i++ {
				row := src[i*n : i*n+n]
				for j := j0; j < jMax; j++ {
					dst[j*n+i] = row[j]
				}
			}
		}
	}
}

// Bytes returns the memory footprint of the matrix storage: three n×n
// int32 planes (before, after, tied). A byte-budgeted cache (the serving
// layer's matrix LRU) charges entries by this value.
func (p *Pairs) Bytes() int64 {
	return 3 * 4 * int64(p.N) * int64(p.N)
}

// Before returns the number of rankings placing a strictly before b.
func (p *Pairs) Before(a, b int) int { return int(p.before[a*p.N+b]) }

// Tied returns the number of rankings tying a and b.
func (p *Pairs) Tied(a, b int) int { return int(p.tied[a*p.N+b]) }

// RowBefore returns row a of the before matrix: RowBefore(a)[b] counts the
// rankings placing a strictly before b. The slice aliases the matrix and
// must not be modified.
func (p *Pairs) RowBefore(a int) []int32 { return p.before[a*p.N : (a+1)*p.N] }

// RowAfter returns row a of the transposed before matrix: RowAfter(a)[b]
// counts the rankings placing a strictly after b. The slice aliases the
// matrix and must not be modified.
func (p *Pairs) RowAfter(a int) []int32 { return p.after[a*p.N : (a+1)*p.N] }

// RowTied returns row a of the tie matrix: RowTied(a)[b] counts the rankings
// tying a and b. The slice aliases the matrix and must not be modified.
func (p *Pairs) RowTied(a int) []int32 { return p.tied[a*p.N : (a+1)*p.N] }

// CostBefore returns the disagreement cost of placing a strictly before b in
// the consensus: every input ranking with b before a, or with a and b tied,
// disagrees (w_{b≤a} in the LPB objective of Section 4.2).
func (p *Pairs) CostBefore(a, b int) int64 {
	i := a*p.N + b
	return int64(p.after[i]) + int64(p.tied[i])
}

// CostTied returns the disagreement cost of tying a and b in the consensus:
// every input ranking ordering them strictly disagrees (w_{a<b} + w_{a>b}).
func (p *Pairs) CostTied(a, b int) int64 {
	i := a*p.N + b
	return int64(p.before[i]) + int64(p.after[i])
}

// MinPairCost returns min(cost(a<b), cost(b<a), cost(a=b)) for the pair — the
// per-pair lower bound used by the exact branch & bound.
func (p *Pairs) MinPairCost(a, b int) int64 {
	c := p.CostBefore(a, b)
	if v := p.CostBefore(b, a); v < c {
		c = v
	}
	if v := p.CostTied(a, b); v < c {
		c = v
	}
	return c
}

// LowerBound returns Σ_{a<b} MinPairCost(a, b) over the given elements: a
// valid lower bound on the generalized Kemeny score of any consensus.
func (p *Pairs) LowerBound(elems []int) int64 {
	var lb int64
	for i, a := range elems {
		for _, b := range elems[i+1:] {
			lb += p.MinPairCost(a, b)
		}
	}
	return lb
}

// Score computes the generalized Kemeny score K(r, R) of a consensus from
// the pair matrix in O(n²), independent of m. The consensus must cover a
// subset of the universe; uncovered elements are ignored. Like the
// accumulation, it walks bucket runs instead of comparing positions.
func (p *Pairs) Score(r *rankings.Ranking) int64 {
	n := p.N
	var k int64
	bs := r.Buckets
	for i, bi := range bs {
		for xi, a := range bi {
			brow := p.before[a*n : a*n+n]
			arow := p.after[a*n : a*n+n]
			trow := p.tied[a*n : a*n+n]
			// a tied with the rest of its bucket: CostTied = before + after.
			for _, b := range bi[xi+1:] {
				k += int64(brow[b]) + int64(arow[b])
			}
			// a strictly before later buckets: CostBefore = after + tied.
			for _, bj := range bs[i+1:] {
				for _, b := range bj {
					k += int64(arow[b]) + int64(trow[b])
				}
			}
		}
	}
	return k
}

// MajorityPrefers reports whether strictly more rankings place a before b
// than b before a (the MC4 transition test).
func (p *Pairs) MajorityPrefers(a, b int) bool {
	i := a*p.N + b
	return p.before[i] > p.after[i]
}

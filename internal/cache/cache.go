// Package cache provides the serving layer's session cache: an LRU of
// *rankagg.Session values keyed on the dataset content hash
// (rankagg.Dataset.Hash), so repeated and concurrent requests over the
// same dataset share one cached O(m·n²) pair matrix instead of rebuilding
// it per request.
//
// The cache bounds both the entry count and the total matrix bytes
// (Session.MatrixBytes), evicting least-recently-used sessions when either
// budget is exceeded. Lookups of a missing key are single-flighted: when
// two requests race on the first query for one dataset, exactly one
// executes the build function (session construction plus the eager matrix
// build) and both receive the same session.
package cache

import (
	"container/list"
	"sync"

	"rankagg"
)

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts lookups answered by a ready entry.
	Hits int64
	// Misses counts lookups that found no ready entry — including lookups
	// coalesced onto another request's in-flight build (those increment
	// Misses but not Builds).
	Misses int64
	// Builds counts build functions that ran to completion successfully;
	// with single-flighting this is the number of pair matrices actually
	// constructed on behalf of the cache.
	Builds int64
	// Evictions counts entries dropped to satisfy the budgets.
	Evictions int64
	// Entries and Bytes describe the current cache content.
	Entries int
	Bytes   int64
}

// Cache is a budgeted LRU of sessions. The zero value is not usable; see
// New. All methods are safe for concurrent use.
type Cache struct {
	maxEntries int
	maxBytes   int64

	mu      sync.Mutex
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	flight  map[string]*flightCall
	bytes   int64
	hits    int64
	misses  int64
	builds  int64
	evicted int64
}

type entry struct {
	key   string
	sess  *rankagg.Session
	bytes int64
}

// flightCall is one in-flight build; latecomers Wait and then read the
// outcome.
type flightCall struct {
	wg   sync.WaitGroup
	sess *rankagg.Session
	err  error
}

// New returns a cache bounded to maxEntries sessions and maxBytes of
// cached pair-matrix memory. Either bound may be 0 for "unlimited"
// (bounding at least one of them is strongly advised in a server).
func New(maxEntries int, maxBytes int64) *Cache {
	return &Cache{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
		flight:     make(map[string]*flightCall),
	}
}

// GetOrBuild returns the session cached under key, building and inserting
// it via build on a miss. hit reports whether a ready entry answered the
// lookup. Concurrent misses on one key are coalesced: a single build runs
// and every caller receives its outcome (an error is returned to all
// waiters and nothing is cached).
//
// build should return the session with its pair matrix already built
// (call Session.Pairs() before returning) so the entry's byte weight is
// final on insertion and later requests never pay the build.
func (c *Cache) GetOrBuild(key string, build func() (*rankagg.Session, error)) (sess *rankagg.Session, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		c.mu.Unlock()
		return el.Value.(*entry).sess, true, nil
	}
	c.misses++
	if fc, ok := c.flight[key]; ok {
		c.mu.Unlock()
		fc.wg.Wait()
		return fc.sess, false, fc.err
	}
	fc := &flightCall{}
	fc.wg.Add(1)
	c.flight[key] = fc
	c.mu.Unlock()

	sess, err = build()

	c.mu.Lock()
	delete(c.flight, key)
	if err == nil {
		c.builds++
		c.insertLocked(key, sess)
	}
	c.mu.Unlock()
	fc.sess, fc.err = sess, err
	fc.wg.Done()
	return sess, false, err
}

// Get returns the session cached under key without building on a miss.
func (c *Cache) Get(key string) (*rankagg.Session, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return el.Value.(*entry).sess, true
}

// insertLocked adds a fresh entry at the MRU position and evicts from the
// LRU end until both budgets hold. The just-inserted entry is never
// evicted — a dataset too large for the byte budget still serves the
// requests that are hot right now and goes first when something newer
// arrives.
func (c *Cache) insertLocked(key string, sess *rankagg.Session) {
	if el, ok := c.items[key]; ok { // lost a race that can't happen under single-flight; keep the existing entry
		c.ll.MoveToFront(el)
		return
	}
	e := &entry{key: key, sess: sess, bytes: sess.MatrixBytes()}
	el := c.ll.PushFront(e)
	c.items[key] = el
	c.bytes += e.bytes
	for c.overBudgetLocked() {
		back := c.ll.Back()
		if back == nil || back == el {
			break
		}
		c.removeLocked(back)
		c.evicted++
	}
}

func (c *Cache) overBudgetLocked() bool {
	return (c.maxEntries > 0 && c.ll.Len() > c.maxEntries) ||
		(c.maxBytes > 0 && c.bytes > c.maxBytes)
}

func (c *Cache) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.bytes
}

// Len returns the number of cached sessions.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes returns the total matrix bytes currently cached.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Builds:    c.builds,
		Evictions: c.evicted,
		Entries:   c.ll.Len(),
		Bytes:     c.bytes,
	}
}

package server_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"rankagg/internal/rankings"
	"rankagg/internal/server"
	"rankagg/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	st, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func doJSON(t *testing.T, method, url string, req any) (*http.Response, []byte) {
	t.Helper()
	var body []byte
	if req != nil {
		var err error
		body, err = json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
	}
	httpReq, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func putDataset(t *testing.T, url string, wire rankings.DatasetWire) (server.DatasetCreateResponse, int) {
	t.Helper()
	resp, data := doJSON(t, http.MethodPut, url+"/v1/datasets", wire)
	var out server.DatasetCreateResponse
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusCreated {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("PUT response: %v (%s)", err, data)
		}
	} else {
		t.Fatalf("PUT /v1/datasets: %d %s", resp.StatusCode, data)
	}
	return out, resp.StatusCode
}

func aggregateHash(t *testing.T, url, hash, algorithm string) (server.AggregateResponse, *http.Response) {
	t.Helper()
	resp, data := doJSON(t, http.MethodPost, url+"/v1/datasets/"+hash+"/aggregate",
		map[string]any{"spec": map[string]any{"algorithm": algorithm}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/datasets/%s/aggregate: %d %s", hash, resp.StatusCode, data)
	}
	var out server.AggregateResponse
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("aggregate response: %v (%s)", err, data)
	}
	return out, resp
}

// TestDatasetResourceLifecycle drives the new resource surface on an
// ephemeral server (no store): PUT is idempotent by content, the hash
// endpoints serve from the cache, and DELETE evicts.
func TestDatasetResourceLifecycle(t *testing.T) {
	_, ts := newTestServer(t, server.Config{})
	wire := smallRequest("BioConsert").DatasetWire

	created, code := putDataset(t, ts.URL, wire)
	if code != http.StatusCreated || !created.Created || created.Persisted || created.N != 4 || created.M != 3 {
		t.Fatalf("first PUT: code=%d %+v", code, created)
	}
	again, code := putDataset(t, ts.URL, wire)
	if code != http.StatusOK || again.Created || again.DatasetHash != created.DatasetHash {
		t.Fatalf("second PUT: code=%d %+v", code, again)
	}

	resp, data := doJSON(t, http.MethodGet, ts.URL+"/v1/datasets", nil)
	var list struct {
		Datasets []server.DatasetListEntry `json:"datasets"`
		Total    int                       `json:"total"`
	}
	if err := json.Unmarshal(data, &list); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/datasets: %d %s (%v)", resp.StatusCode, data, err)
	}
	if list.Total != 1 || len(list.Datasets) != 1 || !list.Datasets[0].Cached || list.Datasets[0].Persisted {
		t.Fatalf("listing = %+v", list)
	}

	agg, httpResp := aggregateHash(t, ts.URL, created.DatasetHash, "BioConsert")
	if agg.DatasetHash != created.DatasetHash || !agg.CacheHit {
		t.Fatalf("canonical aggregate: %+v", agg)
	}
	if tier := httpResp.Header.Get("X-Rankagg-Tier"); tier != "exact" {
		t.Fatalf("X-Rankagg-Tier = %q, want exact", tier)
	}
	// The alias surface answers identically for the same dataset + spec.
	resp2, data2 := postAggregate(t, ts.URL, smallRequest("BioConsert"))
	var alias server.AggregateResponse
	if err := json.Unmarshal(data2, &alias); err != nil || resp2.StatusCode != http.StatusOK {
		t.Fatalf("alias POST: %d %s", resp2.StatusCode, data2)
	}
	if !alias.ConsensusHit || alias.Score != agg.Score {
		t.Fatalf("alias result diverged: %+v vs %+v", alias, agg)
	}
	// A body smuggling rankings into the hash endpoint is rejected.
	resp, data = doJSON(t, http.MethodPost, ts.URL+"/v1/datasets/"+created.DatasetHash+"/aggregate", smallRequest("BioConsert"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("hash aggregate with inline rankings: %d %s", resp.StatusCode, data)
	}

	resp, data = doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/"+created.DatasetHash, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d %s", resp.StatusCode, data)
	}
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/"+created.DatasetHash, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE: %d, want 404", resp.StatusCode)
	}
	resp, _ = doJSON(t, http.MethodDelete, ts.URL+"/v1/datasets/"+created.DatasetHash, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE: %d, want 404", resp.StatusCode)
	}
}

// TestPersistedRestartRecovery is the tentpole acceptance test at the
// serving layer: create + PATCH + aggregate against a store-backed server,
// then bring up a FRESH server + store on the same data dir (the restart)
// and assert the dataset answers GET, a repeat aggregate is a consensus
// hit with zero solver runs, a further PATCH both write-aheads and
// harvests the preloaded consensus as a warm hint, and the rebuild went
// through store replay.
func TestPersistedRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	_, ts1 := newTestServer(t, server.Config{Store: st1})

	created, _ := putDataset(t, ts1.URL, smallRequest("BioConsert").DatasetWire)
	if !created.Persisted {
		t.Fatalf("PUT with a store: %+v not persisted", created)
	}
	h0 := created.DatasetHash
	first, _ := aggregateHash(t, ts1.URL, h0, "BioConsert")
	if first.ConsensusHit {
		t.Fatalf("first aggregate claims a consensus hit")
	}

	// Batch PATCH through the ops wire; the rotation contract says the new
	// handle arrives in both dataset_hash and Location.
	resp, data := doPatch(t, ts1.URL, h0, server.PatchRequest{Ops: []server.PatchOp{
		{Add: extraRanking()},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PATCH: %d %s", resp.StatusCode, data)
	}
	var patched server.PatchResponse
	if err := json.Unmarshal(data, &patched); err != nil {
		t.Fatal(err)
	}
	if !patched.Persisted || !patched.DeltaApplied || patched.MatrixDeltas == 0 {
		t.Fatalf("persisted PATCH: %+v", patched)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/datasets/"+patched.DatasetHash {
		t.Fatalf("Location = %q, want /v1/datasets/%s", loc, patched.DatasetHash)
	}
	h1 := patched.DatasetHash
	warm, _ := aggregateHash(t, ts1.URL, h1, "BioConsert")
	if !warm.Stats.WarmStart {
		t.Fatalf("post-PATCH solve did not warm-start: %+v", warm.Stats)
	}
	st1.Close()

	// ---- restart ----
	st2 := openStore(t, dir)
	s2, ts2 := newTestServer(t, server.Config{Store: st2})

	resp, data = doJSON(t, http.MethodGet, ts2.URL+"/v1/datasets/"+h1, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("restarted GET: %d %s", resp.StatusCode, data)
	}
	var info server.DatasetInfoResponse
	if err := json.Unmarshal(data, &info); err != nil {
		t.Fatal(err)
	}
	if !info.Persisted || info.Cached || info.M != 4 || info.Version != 1 || info.CachedConsensus == 0 {
		t.Fatalf("restarted info: %+v", info)
	}

	// The persisted consensus answers with ZERO solver runs.
	replay, _ := aggregateHash(t, ts2.URL, h1, "BioConsert")
	if !replay.ConsensusHit || replay.Score != warm.Score || !replay.Consensus.Equal(warm.Consensus) {
		t.Fatalf("restarted aggregate: %+v, want consensus hit matching %+v", replay, warm)
	}
	if runs := s2.ConsensusStats().Runs; runs != 0 {
		t.Fatalf("restarted server ran %d solves, want 0", runs)
	}
	if replays := st2.Stats().Replays; replays != 0 {
		t.Fatalf("consensus hit should not have rebuilt a session (replays=%d)", replays)
	}

	// A PATCH against the restarted (cold) server: no session is cached,
	// the store accepts the delta anyway, and the preloaded consensus of
	// the base hash demotes to the rotated hash's warm hint.
	resp, data = doPatch(t, ts2.URL, h1, server.PatchRequest{Ops: []server.PatchOp{
		{Remove: extraRanking()},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold PATCH: %d %s", resp.StatusCode, data)
	}
	if err := json.Unmarshal(data, &patched); err != nil {
		t.Fatal(err)
	}
	if !patched.Persisted || patched.MatrixDeltas != 0 || patched.MatrixBuilds != 0 {
		t.Fatalf("cold PATCH should log without a session: %+v", patched)
	}
	h2 := patched.DatasetHash
	if h2 != h0 {
		t.Fatalf("add-then-remove of the same ranking rotated to %s, want the original %s", h2, h0)
	}
	resp, data = doJSON(t, http.MethodGet, ts2.URL+"/v1/datasets/"+h2, nil)
	var hint server.DatasetInfoResponse
	if err := json.Unmarshal(data, &hint); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET rotated: %d %s", resp.StatusCode, data)
	}
	if !hint.WarmHint {
		t.Fatalf("preloaded consensus not harvested as a warm hint: %+v", hint)
	}

	// Aggregating the rotated hash rebuilds the session by store replay
	// (snapshot + log), warm-started from the harvested hint, and scores
	// exactly what the original pre-PATCH solve did — the dataset is
	// content-identical to the one the first server solved.
	final, _ := aggregateHash(t, ts2.URL, h2, "BioConsert")
	if final.ConsensusHit {
		t.Fatalf("rotated hash cannot be a consensus hit yet")
	}
	if !final.Stats.WarmStart {
		t.Fatalf("replayed solve did not consume the warm hint: %+v", final.Stats)
	}
	if final.Score != first.Score || !final.Consensus.Equal(first.Consensus) {
		t.Fatalf("replayed dataset solved differently: %+v vs %+v", final, first)
	}
	if replays := st2.Stats().Replays; replays < 1 {
		t.Fatalf("store replays = %d, want >= 1", replays)
	}
}

// TestPatchEvictedPersistedDataset is the acceptance criterion "a PATCH
// against a dataset evicted from the LRU succeeds via store replay
// instead of 404ing": with a one-entry cache, aggregating a second
// dataset evicts the first, whose PATCH must still land (write-ahead into
// the log) and whose next aggregation reconstructs by replay.
func TestPatchEvictedPersistedDataset(t *testing.T) {
	st := openStore(t, t.TempDir())
	s, ts := newTestServer(t, server.Config{Store: st, CacheEntries: 1})

	created, _ := putDataset(t, ts.URL, smallRequest("BioConsert").DatasetWire)
	h0 := created.DatasetHash
	aggregateHash(t, ts.URL, h0, "BordaCount")

	// A second dataset through the one-entry cache evicts the first.
	other := rankings.DatasetWire{Rankings: []*rankings.Ranking{
		rankings.New([]int{2}, []int{0}, []int{1}),
		rankings.New([]int{1}, []int{2}, []int{0}),
	}}
	created2, _ := putDataset(t, ts.URL, other)
	aggregateHash(t, ts.URL, created2.DatasetHash, "BordaCount")
	if st := s.CacheStats(); st.Evictions == 0 {
		t.Fatalf("second dataset did not evict the first: %+v", st)
	}

	resp, data := doPatch(t, ts.URL, h0, server.PatchRequest{Ops: []server.PatchOp{{Add: extraRanking()}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PATCH of evicted dataset: %d %s", resp.StatusCode, data)
	}
	var patched server.PatchResponse
	if err := json.Unmarshal(data, &patched); err != nil {
		t.Fatal(err)
	}
	if !patched.Persisted || patched.M != 4 {
		t.Fatalf("evicted PATCH: %+v", patched)
	}
	res, _ := aggregateHash(t, ts.URL, patched.DatasetHash, "BordaCount")
	if res.M != 4 {
		t.Fatalf("replayed aggregate sees m=%d, want 4", res.M)
	}
	if replays := st.Stats().Replays; replays < 1 {
		t.Fatalf("store replays = %d, want >= 1", replays)
	}
	// And the never-cached dataset still 404s nowhere: it IS the store's.
	resp, _ = doJSON(t, http.MethodGet, ts.URL+"/v1/datasets/"+patched.DatasetHash, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after replay: %d", resp.StatusCode)
	}
}

// TestBatchPatchWire pins the ops wire's contract: multi-op atomicity (one
// failing op rejects the whole batch, nothing logged), the ops/legacy
// exclusivity, and per-op shape validation.
func TestBatchPatchWire(t *testing.T) {
	st := openStore(t, t.TempDir())
	_, ts := newTestServer(t, server.Config{Store: st})

	created, _ := putDataset(t, ts.URL, smallRequest("BioConsert").DatasetWire)
	h0 := created.DatasetHash

	// One batch: two adds and a remove, atomically — one log record.
	second := rankings.New([]int{2}, []int{3}, []int{0, 1})
	resp, data := doPatch(t, ts.URL, h0, server.PatchRequest{Ops: []server.PatchOp{
		{Add: extraRanking()},
		{Remove: smallRequest("x").Rankings[0]},
		{Add: second},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch PATCH: %d %s", resp.StatusCode, data)
	}
	var patched server.PatchResponse
	if err := json.Unmarshal(data, &patched); err != nil {
		t.Fatal(err)
	}
	if patched.Added != 2 || patched.Removed != 1 || patched.M != 4 {
		t.Fatalf("batch PATCH counts: %+v", patched)
	}
	info, ok := st.Info(patched.DatasetHash)
	if !ok || info.LogRecords != 1 || info.Version != 3 {
		t.Fatalf("batch not one log record: %+v ok=%v", info, ok)
	}

	// Atomicity: a batch whose removal cannot match must change nothing.
	resp, data = doPatch(t, ts.URL, patched.DatasetHash, server.PatchRequest{Ops: []server.PatchOp{
		{Add: smallRequest("x").Rankings[0]},
		{Remove: rankings.New([]int{3}, []int{2}, []int{1}, []int{0})},
	}})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("unmatched removal in batch: %d %s, want 409", resp.StatusCode, data)
	}
	if after, _ := st.Info(patched.DatasetHash); after.Version != 3 || after.LogRecords != 1 {
		t.Fatalf("failed batch mutated the store: %+v", after)
	}

	// Wire-shape rejections.
	for _, bad := range []string{
		`{"ops":[{"add":[[0],[1],[2],[3]],"remove":[[0],[1],[2],[3]]}]}`, // both in one op
		`{"ops":[{}]}`, // neither
		`{"ops":[{"add":[[0],[1],[2],[3]]}],"add":[[[0],[1],[2],[3]]]}`, // ops + legacy
	} {
		resp, data = doPatch(t, ts.URL, patched.DatasetHash, bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad wire %s: %d %s, want 400", bad, resp.StatusCode, data)
		}
	}
}

// TestCrashBetweenAppendAndRekey simulates the crash the write-ahead order
// exists for: the delta-log record is durable but the serving state (cache
// re-key, consensus rotation) never happened. The restarted server must
// surface the dataset under the post-delta hash, serve it byte-identically
// (same consensus, same score as the pre-crash solve of the same content),
// and keep the stale consensus as the rotated hash's warm hint.
func TestCrashBetweenAppendAndRekey(t *testing.T) {
	dir := t.TempDir()
	st1 := openStore(t, dir)
	_, ts1 := newTestServer(t, server.Config{Store: st1})

	created, _ := putDataset(t, ts1.URL, smallRequest("BioConsert").DatasetWire)
	h0 := created.DatasetHash
	aggregateHash(t, ts1.URL, h0, "BioConsert")

	// The "crash": append straight to the store — the server's cache and
	// consensus never hear about it, exactly the state a kill between the
	// log fsync and the cache re-key leaves behind.
	h1, _, err := st1.AppendPatch(h0, []*rankings.Ranking{extraRanking()}, nil)
	if err != nil {
		t.Fatalf("AppendPatch: %v", err)
	}
	st1.Close()

	st2 := openStore(t, dir)
	_, ts2 := newTestServer(t, server.Config{Store: st2})

	resp, data := doJSON(t, http.MethodGet, ts2.URL+"/v1/datasets/"+h0, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-crash hash still serves: %d %s", resp.StatusCode, data)
	}
	resp, data = doJSON(t, http.MethodGet, ts2.URL+"/v1/datasets/"+h1, nil)
	var info server.DatasetInfoResponse
	if err := json.Unmarshal(data, &info); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("post-crash GET: %d %s", resp.StatusCode, data)
	}
	if !info.WarmHint {
		t.Fatalf("stale consensus not demoted to a warm hint: %+v", info)
	}

	// The replayed dataset must solve exactly like a fresh build of the
	// same content (served by a store-less control server).
	got, _ := aggregateHash(t, ts2.URL, h1, "BioConsert")
	if !got.Stats.WarmStart {
		t.Fatalf("recovered solve did not consume the warm hint: %+v", got.Stats)
	}
	_, control := newTestServer(t, server.Config{})
	req := smallRequest("BioConsert")
	req.Rankings = append(req.Rankings, extraRanking())
	cresp, cdata := postAggregate(t, control.URL, req)
	var want server.AggregateResponse
	if err := json.Unmarshal(cdata, &want); err != nil || cresp.StatusCode != http.StatusOK {
		t.Fatalf("control aggregate: %d %s", cresp.StatusCode, cdata)
	}
	if want.DatasetHash != h1 {
		t.Fatalf("control hash %s != replayed %s", want.DatasetHash, h1)
	}
	if got.Score != want.Score || !got.Consensus.Equal(want.Consensus) {
		t.Fatalf("replayed solve diverged from fresh build: %+v vs %+v", got, want)
	}
}

package algo

import (
	"math/rand"
	"testing"

	"rankagg/internal/gen"
	"rankagg/internal/kendall"
	"rankagg/internal/rankings"
)

// TestPermutationInputsHavePermutationOptimum verifies the theorem of
// Brancotte & Milosz [9] the paper relies on (Section 4): "Considering a
// set of such rankings [permutations], we have proved that under the
// generalized Kendall-τ distance the optimal consensus obtained has
// necessarily only buckets of size one." Consequently the ties-aware exact
// optimum must coincide with the permutation-only exact optimum (BnB).
func TestPermutationInputsHavePermutationOptimum(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 15; trial++ {
		n := 3 + rng.Intn(4)
		m := 2 + rng.Intn(4)
		rks := make([]*rankings.Ranking, m)
		for i := range rks {
			rks[i] = gen.UniformPermutation(rng, n)
		}
		d := rankings.NewDataset(n, rks...)

		tied, exact1, err := (&ExactBnB{}).AggregateExact(d)
		if err != nil {
			t.Fatal(err)
		}
		perm, exact2, err := (&BnB{}).AggregateExact(d)
		if err != nil {
			t.Fatal(err)
		}
		if !exact1 || !exact2 {
			t.Fatal("both searches must be exact at this size")
		}
		st, sp := kendall.Score(tied, d), kendall.Score(perm, d)
		if st != sp {
			t.Fatalf("trial %d: ties-aware optimum %d != permutation optimum %d (violates [9])",
				trial, st, sp)
		}
		// The returned ties-aware optimum itself need not be a permutation
		// only if multiple optima exist; but its score must not be improved
		// by any bucket order, which the equality above already certifies.
		// Additionally check a brute-force sweep for small n.
		if n <= 5 {
			_, want := bruteForceOptimum(d)
			if st != want {
				t.Fatalf("trial %d: exact %d != brute force %d", trial, st, want)
			}
		}
	}
}

// TestTiesOptimumCanBeatPermutations: the converse situation — with tied
// inputs, allowing ties in the output can strictly lower the score, which
// is the whole point of the generalized distance.
func TestTiesOptimumCanBeatPermutations(t *testing.T) {
	// Three rankings tying A and B; any permutation must untie them, paying
	// 3, while the tied consensus pays 0.
	d, _ := mustDS(t, "[{A,B},{C}]", "[{A,B},{C}]", "[{A,B},{C}]")
	tied, _, err := (&ExactBnB{}).AggregateExact(d)
	if err != nil {
		t.Fatal(err)
	}
	perm, _, err := (&BnB{}).AggregateExact(d)
	if err != nil {
		t.Fatal(err)
	}
	st, sp := kendall.Score(tied, d), kendall.Score(perm, d)
	if st != 0 || sp != 3 {
		t.Errorf("tied optimum %d (want 0), permutation optimum %d (want 3)", st, sp)
	}
}

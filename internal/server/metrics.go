package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics holds the server's counters, exposed on GET /metrics in the
// Prometheus text exposition format. Everything is hand-rolled on
// sync/atomic — the module takes no dependencies — and cheap enough to
// bump on every request.
type metrics struct {
	start      time.Time
	matrixMode string // the -matrix-mode label, fixed at startup
	approxMode string // the -approx-mode label, fixed at startup

	inFlight       atomic.Int64 // aggregation requests currently executing
	tokensInUse    atomic.Int64 // worker tokens currently held by requests
	cancels        atomic.Int64 // runs aborted by client disconnect
	deadlineHits   atomic.Int64 // runs that returned an incumbent on deadline
	queueRejects   atomic.Int64 // requests whose budget expired waiting for a worker token
	deltaApplied   atomic.Int64 // PATCH deltas applied to a cached session (O(n²) instead of a rebuild)
	deltaMisses    atomic.Int64 // PATCH requests whose base dataset was not cached (client falls back to a full POST)
	matrixBytes    atomic.Int64 // backing bytes of the most recently built (or PATCHed) pair matrix
	approxRequests atomic.Int64 // aggregations served by the matrix-free approximation tier (requested or routed)
	approxRouted   atomic.Int64 // over-budget aggregations the admission router diverted to the approx tier instead of 413ing
	approxDeltas   atomic.Int64 // PATCH deltas absorbed by approx-tier incremental session state (no matrix, no rebuild)
	encodeWorkers  atomic.Int64 // worker tokens granted to the most recent approx-tier run (encode sharding width)
	rejectedMatrix atomic.Int64 // POSTs 413ed because the projected pair matrix exceeds the byte budget
	rejectedDelta  atomic.Int64 // PATCHes 413ed because the delta would promote the matrix past the byte budget
	warmStarts     atomic.Int64 // solver runs seeded from a pre-PATCH consensus (stats.warm_start)

	mu       sync.Mutex
	requests map[reqKey]int64   // (endpoint, code) → count
	latSum   map[string]float64 // endpoint → total seconds
	latCount map[string]int64   // endpoint → observations
}

type reqKey struct {
	endpoint string
	code     int
}

func newMetrics(matrixMode, approxMode string) *metrics {
	return &metrics{
		start:      time.Now(),
		matrixMode: matrixMode,
		approxMode: approxMode,
		requests:   make(map[reqKey]int64),
		latSum:     make(map[string]float64),
		latCount:   make(map[string]int64),
	}
}

// observe records one completed HTTP request.
func (m *metrics) observe(endpoint string, code int, elapsed time.Duration) {
	m.mu.Lock()
	m.requests[reqKey{endpoint, code}]++
	m.latSum[endpoint] += elapsed.Seconds()
	m.latCount[endpoint]++
	m.mu.Unlock()
}

// write renders the exposition document. cacheLine lets the server append
// gauges owned by other components (the session cache) atomically with the
// same scrape.
func (m *metrics) write(w io.Writer, extra func(io.Writer)) {
	fmt.Fprintf(w, "# HELP rankagg_uptime_seconds Time since the server started.\n")
	fmt.Fprintf(w, "# TYPE rankagg_uptime_seconds gauge\n")
	fmt.Fprintf(w, "rankagg_uptime_seconds %.3f\n", time.Since(m.start).Seconds())

	fmt.Fprintf(w, "# HELP rankagg_inflight_requests Aggregation requests currently executing.\n")
	fmt.Fprintf(w, "# TYPE rankagg_inflight_requests gauge\n")
	fmt.Fprintf(w, "rankagg_inflight_requests %d\n", m.inFlight.Load())

	fmt.Fprintf(w, "# HELP rankagg_worker_tokens_in_use Worker tokens currently held.\n")
	fmt.Fprintf(w, "# TYPE rankagg_worker_tokens_in_use gauge\n")
	fmt.Fprintf(w, "rankagg_worker_tokens_in_use %d\n", m.tokensInUse.Load())

	fmt.Fprintf(w, "# HELP rankagg_run_cancels_total Runs aborted by client disconnect.\n")
	fmt.Fprintf(w, "# TYPE rankagg_run_cancels_total counter\n")
	fmt.Fprintf(w, "rankagg_run_cancels_total %d\n", m.cancels.Load())

	fmt.Fprintf(w, "# HELP rankagg_run_deadline_hits_total Runs that returned a best incumbent on deadline.\n")
	fmt.Fprintf(w, "# TYPE rankagg_run_deadline_hits_total counter\n")
	fmt.Fprintf(w, "rankagg_run_deadline_hits_total %d\n", m.deadlineHits.Load())

	fmt.Fprintf(w, "# HELP rankagg_queue_rejects_total Requests whose budget expired waiting for a worker token.\n")
	fmt.Fprintf(w, "# TYPE rankagg_queue_rejects_total counter\n")
	fmt.Fprintf(w, "rankagg_queue_rejects_total %d\n", m.queueRejects.Load())

	fmt.Fprintf(w, "# HELP rankagg_delta_applied_total PATCH deltas applied to a cached session (O(n²) update, no matrix rebuild).\n")
	fmt.Fprintf(w, "# TYPE rankagg_delta_applied_total counter\n")
	fmt.Fprintf(w, "rankagg_delta_applied_total %d\n", m.deltaApplied.Load())

	fmt.Fprintf(w, "# HELP rankagg_delta_miss_fallback_total PATCH requests whose base dataset was not cached; the client must fall back to a full POST.\n")
	fmt.Fprintf(w, "# TYPE rankagg_delta_miss_fallback_total counter\n")
	fmt.Fprintf(w, "rankagg_delta_miss_fallback_total %d\n", m.deltaMisses.Load())

	fmt.Fprintf(w, "# HELP rankagg_matrix_bytes Backing bytes of the most recently built pair matrix (reflects -matrix-mode; 0 until the first build).\n")
	fmt.Fprintf(w, "# TYPE rankagg_matrix_bytes gauge\n")
	fmt.Fprintf(w, "rankagg_matrix_bytes %d\n", m.matrixBytes.Load())

	fmt.Fprintf(w, "# HELP rankagg_matrix_mode The configured pair-matrix storage mode.\n")
	fmt.Fprintf(w, "# TYPE rankagg_matrix_mode gauge\n")
	fmt.Fprintf(w, "rankagg_matrix_mode{mode=%q} 1\n", m.matrixMode)

	fmt.Fprintf(w, "# HELP rankagg_approx_mode The configured approximation-tier admission mode.\n")
	fmt.Fprintf(w, "# TYPE rankagg_approx_mode gauge\n")
	fmt.Fprintf(w, "rankagg_approx_mode{mode=%q} 1\n", m.approxMode)

	fmt.Fprintf(w, "# HELP rankagg_approx_requests_total Aggregations served by the matrix-free approximation tier (explicitly requested or routed).\n")
	fmt.Fprintf(w, "# TYPE rankagg_approx_requests_total counter\n")
	fmt.Fprintf(w, "rankagg_approx_requests_total %d\n", m.approxRequests.Load())

	fmt.Fprintf(w, "# HELP rankagg_approx_routed_total Over-budget aggregations the admission router diverted to the approximation tier instead of rejecting with 413.\n")
	fmt.Fprintf(w, "# TYPE rankagg_approx_routed_total counter\n")
	fmt.Fprintf(w, "rankagg_approx_routed_total %d\n", m.approxRouted.Load())

	fmt.Fprintf(w, "# HELP rankagg_approx_delta_applied_total PATCH deltas absorbed by the approximation tier's incremental session state (O(n log n) per ranking, no matrix, no rebuild).\n")
	fmt.Fprintf(w, "# TYPE rankagg_approx_delta_applied_total counter\n")
	fmt.Fprintf(w, "rankagg_approx_delta_applied_total %d\n", m.approxDeltas.Load())

	fmt.Fprintf(w, "# HELP rankagg_approx_encode_workers Worker tokens granted to the most recent approx-tier run — the width its encode passes shard across (consensus is worker-count invariant).\n")
	fmt.Fprintf(w, "# TYPE rankagg_approx_encode_workers gauge\n")
	fmt.Fprintf(w, "rankagg_approx_encode_workers %d\n", m.encodeWorkers.Load())

	fmt.Fprintf(w, "# HELP rankagg_warm_starts_total Solver runs seeded from a pre-PATCH consensus instead of cold restarts.\n")
	fmt.Fprintf(w, "# TYPE rankagg_warm_starts_total counter\n")
	fmt.Fprintf(w, "rankagg_warm_starts_total %d\n", m.warmStarts.Load())

	fmt.Fprintf(w, "# HELP rankagg_admission_rejected_total Requests rejected with 413 by the matrix byte-budget admission check, by reason.\n")
	fmt.Fprintf(w, "# TYPE rankagg_admission_rejected_total counter\n")
	fmt.Fprintf(w, "rankagg_admission_rejected_total{reason=\"matrix-budget\"} %d\n", m.rejectedMatrix.Load())
	fmt.Fprintf(w, "rankagg_admission_rejected_total{reason=\"delta-budget\"} %d\n", m.rejectedDelta.Load())

	m.mu.Lock()
	reqKeys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].endpoint != reqKeys[j].endpoint {
			return reqKeys[i].endpoint < reqKeys[j].endpoint
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	fmt.Fprintf(w, "# HELP rankagg_http_requests_total HTTP requests by endpoint and status code.\n")
	fmt.Fprintf(w, "# TYPE rankagg_http_requests_total counter\n")
	for _, k := range reqKeys {
		fmt.Fprintf(w, "rankagg_http_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}
	latKeys := make([]string, 0, len(m.latCount))
	for k := range m.latCount {
		latKeys = append(latKeys, k)
	}
	sort.Strings(latKeys)
	fmt.Fprintf(w, "# HELP rankagg_http_request_seconds Cumulative request latency by endpoint.\n")
	fmt.Fprintf(w, "# TYPE rankagg_http_request_seconds summary\n")
	for _, k := range latKeys {
		fmt.Fprintf(w, "rankagg_http_request_seconds_sum{endpoint=%q} %.6f\n", k, m.latSum[k])
		fmt.Fprintf(w, "rankagg_http_request_seconds_count{endpoint=%q} %d\n", k, m.latCount[k])
	}
	m.mu.Unlock()

	if extra != nil {
		extra(w)
	}
}

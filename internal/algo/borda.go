// Package algo implements every rank aggregation algorithm evaluated or
// reviewed by the paper (Table 1), adapted to rankings with ties following
// Section 4.1, plus the two exact methods of Section 4.2. See DESIGN.md for
// the inventory. All algorithms consume complete datasets (use package
// normalize first) and never mutate their input.
package algo

import (
	"sort"

	"rankagg/internal/core"
	"rankagg/internal/rankings"
)

// Borda implements BordaCount [Borda 1781] adapted to ties (Section 4.1.3):
// the position of an element in a ranking is the number of elements placed
// strictly before it, plus one (so tied elements share a position), and the
// score of an element is the sum of its positions. Elements are ranked by
// ascending score. Borda cannot account for the cost of (un)tying elements;
// the paper shows this makes it collapse on unified dissimilar datasets.
type Borda struct {
	// TieEqualScores keeps elements with identical scores tied in the output
	// ("with slight modification" in Table 1). When false (the default,
	// matching the paper's evaluated variant) equal scores are broken by
	// element ID and the output is a permutation.
	TieEqualScores bool
}

// Name implements core.Aggregator.
func (b *Borda) Name() string { return "BordaCount" }

// Aggregate implements core.Aggregator.
func (b *Borda) Aggregate(d *rankings.Dataset) (*rankings.Ranking, error) {
	if err := core.CheckInput(d); err != nil {
		return nil, err
	}
	scores := make([]int64, d.N)
	for _, r := range d.Rankings {
		before := 0
		for _, bucket := range r.Buckets {
			for _, e := range bucket {
				scores[e] += int64(before + 1)
			}
			before += len(bucket)
		}
	}
	return rankByScore(scores, true, b.TieEqualScores), nil
}

// rankByScore sorts elements 0..n-1 by score (ascending if asc) and builds a
// ranking, tying equal scores when tieEqual is set and otherwise breaking
// them by element ID.
func rankByScore(scores []int64, asc, tieEqual bool) *rankings.Ranking {
	n := len(scores)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		si, sj := scores[order[i]], scores[order[j]]
		if si != sj {
			if asc {
				return si < sj
			}
			return si > sj
		}
		return order[i] < order[j]
	})
	r := &rankings.Ranking{}
	for i := 0; i < n; {
		j := i
		for j < n && (tieEqual && scores[order[j]] == scores[order[i]] || j == i) {
			j++
		}
		r.Buckets = append(r.Buckets, append([]int(nil), order[i:j]...))
		i = j
	}
	return r
}

func init() {
	core.Register("BordaCount", func() core.Aggregator { return &Borda{} })
	core.Register("BordaCountTies", func() core.Aggregator { return &Borda{TieEqualScores: true} })
}

package eval

import (
	"testing"
	"time"

	"rankagg/internal/kendall"
	"rankagg/internal/rankings"
)

func TestAutoExplainsItsChoice(t *testing.T) {
	ds := smallDatasets(91, 1, 5, 10)[0]
	a := &Auto{}
	r, rec, err := a.AggregateExplained(ds)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algorithm != "BioConsert" {
		t.Errorf("default-priorities recommendation = %s, want BioConsert", rec.Algorithm)
	}
	if r.Len() != ds.N {
		t.Errorf("consensus covers %d of %d", r.Len(), ds.N)
	}
}

func TestAutoNeedOptimalUsesExact(t *testing.T) {
	ds := smallDatasets(92, 1, 4, 7)[0]
	a := &Auto{NeedOptimal: true, ExactBudget: 30 * time.Second}
	r, rec, err := a.AggregateExplained(ds)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algorithm != "ExactAlgorithm" {
		t.Errorf("recommendation = %s, want ExactAlgorithm at n=7", rec.Algorithm)
	}
	// Verify true optimality against the reference solver.
	ref, exact, err := referenceExact(10, 30*time.Second).AggregateExact(ds)
	if err != nil || !exact {
		t.Fatalf("reference failed: %v %v", exact, err)
	}
	if kendall.Score(r, ds) != kendall.Score(ref, ds) {
		t.Errorf("Auto(NeedOptimal) returned non-optimal consensus")
	}
}

func TestAutoTimeCriticalPicksPositional(t *testing.T) {
	ds := smallDatasets(93, 1, 5, 12)[0]
	a := &Auto{TimeCritical: true}
	_, rec, err := a.AggregateExplained(ds)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Algorithm != "BordaCount" && rec.Algorithm != "MEDRank(0.5)" {
		t.Errorf("time-critical recommendation = %s", rec.Algorithm)
	}
}

func TestAutoRejectsBadInput(t *testing.T) {
	u := rankings.NewUniverse()
	incomplete := rankings.NewDataset(3,
		rankings.MustParse("A>B", u),
		rankings.MustParse("C", u),
	)
	if _, err := (&Auto{}).Aggregate(incomplete); err == nil {
		t.Error("Auto accepted an incomplete dataset")
	}
}

// Package ilp solves linear pseudo-boolean optimization problems (0-1
// integer linear programs) by branch & bound over the LP relaxation, with
// optional lazy constraint generation. It is the pure-Go stand-in for CPLEX
// used by the paper's ties-aware exact algorithm (Section 4.2): the LPB
// model's O(n³) transitivity constraints are generated lazily through the
// Separator callback, keeping each relaxation small.
package ilp

import (
	"context"
	"fmt"
	"math"
	"time"

	"rankagg/internal/lp"
)

// Options tunes the branch & bound.
type Options struct {
	// Ctx, when non-nil, stops the search when the context is done (checked
	// once per branch & bound node and per cut round). The run then returns
	// Feasible (incumbent in hand) or TimedOut, exactly like TimeLimit; the
	// caller distinguishes cancellation from deadline via ctx.Err().
	Ctx context.Context
	// InitialUpper primes the incumbent bound (exclusive): nodes whose
	// relaxation reaches it are pruned. Zero means +Inf.
	InitialUpper float64
	// InitialX optionally provides a feasible 0/1 assignment matching
	// InitialUpper, returned if nothing better is found.
	InitialX []float64
	// Separator, if non-nil, is called with a (possibly fractional) LP
	// solution and returns violated constraints to add, or nil when the
	// point satisfies the full model. Added constraints must be globally
	// valid: they are kept for the rest of the search.
	Separator func(x []float64) []lp.Constraint
	// TimeLimit bounds the wall-clock search time. Zero means unlimited.
	TimeLimit time.Duration
	// IntegerCosts declares that every feasible objective value is integral,
	// enabling ceiling-based pruning.
	IntegerCosts bool
	// MaxLPIter bounds simplex iterations per relaxation solve.
	MaxLPIter int
}

// Status of a branch & bound run.
type Status int

// Run outcomes.
const (
	Optimal  Status = iota // proved optimal
	Feasible               // time limit hit; best incumbent returned
	Infeasible
	TimedOut // time limit hit with no incumbent
)

// Result of a solve.
type Result struct {
	Status Status
	X      []float64 // 0/1 assignment of the incumbent
	Obj    float64
	Nodes  int // branch & bound nodes explored
	Cuts   int // lazy constraints added
}

const intTol = 1e-6

// SolveBinary minimizes the problem with every variable restricted to {0,1}.
// The problem's constraints plus any lazily separated ones define
// feasibility. An upper bound x ≤ 1 is implied for every variable.
func SolveBinary(base *lp.Problem, opt Options) (*Result, error) {
	n := base.NumVars
	upper := opt.InitialUpper
	if upper == 0 {
		upper = math.Inf(1)
	}
	var bestX []float64
	if opt.InitialX != nil {
		bestX = append([]float64(nil), opt.InitialX...)
	}
	maxIter := opt.MaxLPIter
	if maxIter == 0 {
		maxIter = 200000
	}

	// work is the mutable model: base constraints + bound rows + lazy cuts.
	// Variable upper bounds x_i ≤ 1 are explicit rows so fixings can reuse
	// them (a fixing x_i = v replaces the bound row pair).
	work := &lp.Problem{NumVars: n, Minimize: base.Minimize}
	work.Cons = append(work.Cons, base.Cons...)
	ubRow := make([]int, n)
	for i := 0; i < n; i++ {
		ubRow[i] = len(work.Cons)
		work.Add(map[int]float64{i: 1}, lp.LE, 1)
	}

	type node struct {
		fixed []int8 // -1 free, 0 fixed to 0, 1 fixed to 1
	}
	freeAll := make([]int8, n)
	for i := range freeAll {
		freeAll[i] = -1
	}
	stack := []node{{fixed: freeAll}}
	res := &Result{}
	start := time.Now()

	applyFixings := func(fixed []int8) {
		for i := 0; i < n; i++ {
			switch fixed[i] {
			case -1:
				work.Cons[ubRow[i]] = lp.Constraint{Coeffs: map[int]float64{i: 1}, Rel: lp.LE, RHS: 1}
			case 0:
				work.Cons[ubRow[i]] = lp.Constraint{Coeffs: map[int]float64{i: 1}, Rel: lp.EQ, RHS: 0}
			case 1:
				work.Cons[ubRow[i]] = lp.Constraint{Coeffs: map[int]float64{i: 1}, Rel: lp.EQ, RHS: 1}
			}
		}
	}

	prune := func(obj float64) bool {
		bound := obj
		if opt.IntegerCosts {
			bound = math.Ceil(obj - 1e-7)
		}
		return bound >= upper-1e-9
	}

	outOfBudget := func() bool {
		if opt.TimeLimit > 0 && time.Since(start) > opt.TimeLimit {
			return true
		}
		return opt.Ctx != nil && opt.Ctx.Err() != nil
	}
	for len(stack) > 0 {
		if outOfBudget() {
			if bestX != nil {
				res.Status, res.X, res.Obj = Feasible, bestX, upper
			} else {
				res.Status = TimedOut
			}
			return res, nil
		}
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		res.Nodes++

		applyFixings(nd.fixed)
		var sol *lp.Solution
		var err error
		// Solve, separating lazy cuts until the relaxation satisfies them.
		for {
			sol, err = lp.SolveIter(work, maxIter)
			if err != nil {
				return nil, err
			}
			if sol.Status != lp.Optimal {
				break
			}
			if opt.Separator == nil {
				break
			}
			cuts := opt.Separator(sol.X)
			if len(cuts) == 0 {
				break
			}
			work.Cons = append(work.Cons, cuts...)
			res.Cuts += len(cuts)
			if outOfBudget() {
				break
			}
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return nil, fmt.Errorf("ilp: relaxation unbounded (binary model should be bounded)")
		case lp.IterLimit:
			return nil, fmt.Errorf("ilp: simplex iteration limit reached")
		}
		if prune(sol.Obj) {
			continue
		}
		// Find most fractional variable.
		branch := -1
		worst := intTol
		for i := 0; i < n; i++ {
			f := math.Abs(sol.X[i] - math.Round(sol.X[i]))
			if f > worst {
				worst = f
				branch = i
			}
		}
		if branch < 0 {
			// Integral: new incumbent.
			x := make([]float64, n)
			for i := range x {
				x[i] = math.Round(sol.X[i])
			}
			if sol.Obj < upper-1e-9 {
				upper = sol.Obj
				bestX = x
			}
			continue
		}
		// Branch: explore the side closer to the fractional value last so it
		// pops first (DFS).
		near := int8(math.Round(sol.X[branch]))
		far := 1 - near
		fixNear := append([]int8(nil), nd.fixed...)
		fixNear[branch] = near
		fixFar := append([]int8(nil), nd.fixed...)
		fixFar[branch] = far
		stack = append(stack, node{fixed: fixFar}, node{fixed: fixNear})
	}
	if bestX == nil {
		res.Status = Infeasible
		return res, nil
	}
	res.Status, res.X, res.Obj = Optimal, bestX, upper
	return res, nil
}

package rankings

import (
	"errors"
	"testing"
)

func TestTopListsDecode(t *testing.T) {
	w := TopListsWire{TopLists: [][]int{{3, 0}, {1, 2, 0}}}
	d, u, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if u != nil {
		t.Error("universe from a nameless payload")
	}
	if d.N != 4 {
		t.Errorf("inferred N = %d, want 4", d.N)
	}
	if d.Complete() {
		t.Error("top-lists decoded as a complete dataset")
	}
	want := FromPermutation([]int{3, 0})
	if !d.Rankings[0].Equal(want) {
		t.Errorf("ranking 0 = %v, want %v", d.Rankings[0], want)
	}
	for i, r := range d.Rankings {
		if !r.IsPermutation() {
			t.Errorf("ranking %d is not a strict list: %v", i, r)
		}
	}
}

func TestTopListsDecodeNames(t *testing.T) {
	w := TopListsWire{
		Names:    []string{"A", "B", "C"},
		TopLists: [][]int{{2, 1}},
	}
	d, u, err := w.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if d.N != 3 || u == nil || u.Name(2) != "C" {
		t.Errorf("decode: n=%d u=%v", d.N, u)
	}
	if _, _, err := (&TopListsWire{Names: []string{"A"}, TopLists: [][]int{{0, 1}}}).Decode(); err == nil {
		t.Error("name/universe size mismatch accepted")
	}
	if _, _, err := (&TopListsWire{Names: []string{"A", "A"}, TopLists: [][]int{{0, 1}}}).Decode(); err == nil {
		t.Error("duplicate names accepted")
	}
}

func TestTopListsDecodeErrors(t *testing.T) {
	if _, _, err := (&TopListsWire{}).Decode(); !errors.Is(err, ErrNoRankings) {
		t.Errorf("empty payload: %v, want ErrNoRankings", err)
	}
	if _, _, err := (&TopListsWire{TopLists: [][]int{{}}}).Decode(); err == nil {
		t.Error("empty list accepted")
	}
	if _, _, err := (&TopListsWire{TopLists: [][]int{{1, 1}}}).Decode(); err == nil {
		t.Error("duplicate element accepted")
	}
	if _, _, err := (&TopListsWire{TopLists: [][]int{{-1}}}).Decode(); err == nil {
		t.Error("negative ID accepted")
	}
	if _, _, err := (&TopListsWire{N: 2, TopLists: [][]int{{0, 5}}}).Decode(); err == nil {
		t.Error("ID past the declared universe accepted")
	}
}

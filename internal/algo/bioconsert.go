package algo

import (
	"rankagg/internal/core"
	"rankagg/internal/kendall"
	"rankagg/internal/rankings"
)

// BioConsert implements the local search of Cohen-Boulakia, Denise & Hamel
// [12] (Section 3.1), the algorithm the paper finds best "in a very large
// majority of the cases". It starts from a solution and applies the two
// edition operations while the generalized Kemeny score decreases:
//
//   - remove an element from its bucket and place it in a NEW bucket at any
//     position, and
//   - move an element into an already existing bucket (tying it there).
//
// By default the search is restarted from every input ranking and the best
// local optimum is returned, as in [12]. Memory is O(n²) (the pair matrix),
// the scaling limit Section 7.4 notes for n > 30000.
type BioConsert struct {
	// StartFrom, when non-nil, replaces the input rankings as the unique
	// starting solution (used for algorithm chaining and ablations).
	StartFrom *rankings.Ranking
}

// Name implements core.Aggregator.
func (a *BioConsert) Name() string { return "BioConsert" }

// Aggregate implements core.Aggregator.
func (a *BioConsert) Aggregate(d *rankings.Dataset) (*rankings.Ranking, error) {
	if err := core.CheckInput(d); err != nil {
		return nil, err
	}
	p := kendall.NewPairs(d)
	seeds := d.Rankings
	if a.StartFrom != nil {
		seeds = []*rankings.Ranking{a.StartFrom}
	}
	var best *rankings.Ranking
	var bestScore int64
	seen := map[string]bool{}
	for _, seed := range seeds {
		key := seed.Clone().Canonicalize().String()
		if seen[key] {
			continue
		}
		seen[key] = true
		cand, score := localSearch(p, seed)
		if best == nil || score < bestScore {
			best, bestScore = cand, score
		}
	}
	return best, nil
}

// localSearch runs BioConsert's descent from the given seed and returns the
// local optimum and its score. The seed may cover a subset of the universe;
// only its elements are moved (and scored).
func localSearch(p *kendall.Pairs, seed *rankings.Ranking) (*rankings.Ranking, int64) {
	st := newSearchState(p, seed)
	for improved := true; improved; {
		improved = false
		for _, x := range st.elems {
			if st.improveElement(x) {
				improved = true
			}
		}
	}
	return st.ranking(), p.Score(st.ranking())
}

// searchState is the mutable bucket order of a running local search.
type searchState struct {
	p        *kendall.Pairs
	elems    []int
	buckets  [][]int
	bucketOf []int
	// scratch, reused across improveElement calls:
	tieCost []int64 // per existing bucket: Σ costTied(x, y∈bucket)
	befCost []int64 // per bucket: Σ costBefore(x, y) — x before the bucket
	aftCost []int64 // per bucket: Σ costBefore(y, x) — x after the bucket
	preB    []int64
	sufA    []int64
}

func newSearchState(p *kendall.Pairs, seed *rankings.Ranking) *searchState {
	st := &searchState{p: p, elems: seed.Elements(), bucketOf: make([]int, p.N)}
	st.buckets = make([][]int, len(seed.Buckets))
	for i, b := range seed.Buckets {
		st.buckets[i] = append([]int(nil), b...)
		for _, e := range b {
			st.bucketOf[e] = i
		}
	}
	return st
}

// improveElement evaluates every placement of x (into each existing bucket,
// or as a new singleton bucket at each boundary) in O(n + k) using prefix
// sums, and applies the best strictly-improving move. Reports whether a
// move was made.
func (st *searchState) improveElement(x int) bool {
	k := len(st.buckets)
	st.ensureScratch(k)
	p := st.p
	for j, b := range st.buckets {
		var tc, bc, ac int64
		for _, y := range b {
			if y == x {
				continue
			}
			tc += p.CostTied(x, y)
			bc += p.CostBefore(x, y)
			ac += p.CostBefore(y, x)
		}
		st.tieCost[j], st.befCost[j], st.aftCost[j] = tc, bc, ac
	}
	// preB[q] = cost of x being after buckets 0..q-1; sufA[q] = cost of x
	// being before buckets q..k-1.
	st.preB[0] = 0
	for j := 0; j < k; j++ {
		st.preB[j+1] = st.preB[j] + st.aftCost[j]
	}
	st.sufA[k] = 0
	for j := k - 1; j >= 0; j-- {
		st.sufA[j] = st.sufA[j+1] + st.befCost[j]
	}
	cur := st.bucketOf[x]
	curCost := st.preB[cur] + st.sufA[cur+1] + st.tieCost[cur]

	bestDelta := int64(0)
	bestTie, bestNew := -1, -1
	for j := 0; j < k; j++ {
		if j == cur {
			continue
		}
		if d := st.preB[j] + st.sufA[j+1] + st.tieCost[j] - curCost; d < bestDelta {
			bestDelta, bestTie, bestNew = d, j, -1
		}
	}
	for q := 0; q <= k; q++ {
		if d := st.preB[q] + st.sufA[q] - curCost; d < bestDelta {
			bestDelta, bestTie, bestNew = d, -1, q
		}
	}
	if bestTie < 0 && bestNew < 0 {
		return false
	}
	st.apply(x, bestTie, bestNew)
	return true
}

// apply moves x into existing bucket tie (if tie >= 0) or into a new
// singleton bucket before boundary pos new (if new >= 0). Indices refer to
// the bucket slice BEFORE x is removed.
func (st *searchState) apply(x, tie, newPos int) {
	cur := st.bucketOf[x]
	b := st.buckets[cur]
	for i, e := range b {
		if e == x {
			b[i] = b[len(b)-1]
			st.buckets[cur] = b[:len(b)-1]
			break
		}
	}
	removed := len(st.buckets[cur]) == 0
	if removed {
		st.buckets = append(st.buckets[:cur], st.buckets[cur+1:]...)
		if tie > cur {
			tie--
		}
		if newPos > cur {
			newPos--
		}
	}
	if tie >= 0 {
		st.buckets[tie] = append(st.buckets[tie], x)
	} else {
		st.buckets = append(st.buckets, nil)
		copy(st.buckets[newPos+1:], st.buckets[newPos:])
		st.buckets[newPos] = []int{x}
	}
	for j, bk := range st.buckets {
		for _, e := range bk {
			st.bucketOf[e] = j
		}
	}
}

func (st *searchState) ensureScratch(k int) {
	if cap(st.tieCost) < k {
		st.tieCost = make([]int64, k)
		st.befCost = make([]int64, k)
		st.aftCost = make([]int64, k)
		st.preB = make([]int64, k+1)
		st.sufA = make([]int64, k+1)
	}
	st.tieCost = st.tieCost[:k]
	st.befCost = st.befCost[:k]
	st.aftCost = st.aftCost[:k]
	st.preB = st.preB[:k+1]
	st.sufA = st.sufA[:k+1]
}

func (st *searchState) ranking() *rankings.Ranking {
	out := &rankings.Ranking{Buckets: make([][]int, len(st.buckets))}
	for i, b := range st.buckets {
		out.Buckets[i] = append([]int(nil), b...)
	}
	return out
}

func init() {
	core.Register("BioConsert", func() core.Aggregator { return &BioConsert{} })
}

package eval

import (
	"strings"
	"testing"
	"time"

	"rankagg/internal/algo"
	"rankagg/internal/core"
)

func TestCompareParallelMatchesSequential(t *testing.T) {
	ds := smallDatasets(71, 8, 4, 8)
	algos := []core.Aggregator{&algo.BioConsert{}, &algo.Borda{}, algo.PickAPerm{}}
	seq, err := Compare(algos, ds, Options{Exact: referenceExact(10, 10*time.Second)})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Compare(algos, ds, Options{Exact: referenceExact(10, 10*time.Second), Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Summaries {
		s, p := seq.Summaries[i], par.Summaries[i]
		if s.Name != p.Name || s.MeanGap != p.MeanGap || s.Rank != p.Rank ||
			s.PctFirst != p.PctFirst || s.PctOptimal != p.PctOptimal {
			t.Errorf("parallel run diverged for %s: %+v vs %+v", s.Name, s, p)
		}
	}
	if seq.ExactShare != par.ExactShare {
		t.Errorf("exact share diverged: %v vs %v", seq.ExactShare, par.ExactShare)
	}
}

func TestBordaScalingImproves(t *testing.T) {
	rows, err := BordaScaling(BordaScalingConfig{
		Ns: []int{10, 80}, PerN: 4, Seed: 2, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	// The Section 7.1.1 observation: Borda's m-gap shrinks as n grows.
	if rows[1].BordaGap >= rows[0].BordaGap {
		t.Errorf("Borda gap should shrink with n: %.3f @ n=10 vs %.3f @ n=80",
			rows[0].BordaGap, rows[1].BordaGap)
	}
	out := FormatBordaScaling(rows)
	if !strings.Contains(out, "BordaCount") {
		t.Errorf("missing column:\n%s", out)
	}
}

func TestChainStudy(t *testing.T) {
	cmp, err := ChainStudy(4, 12, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AlgoSummary{}
	for _, s := range cmp.Summaries {
		byName[s.Name] = s
	}
	chain := byName["BordaCount+BioConsert"]
	borda := byName["BordaCount"]
	if chain.Runs == 0 || borda.Runs == 0 {
		t.Fatalf("missing summaries: %v", cmp.Summaries)
	}
	if chain.MeanGap > borda.MeanGap {
		t.Errorf("chain (%.3f) must not be worse than its first stage (%.3f)",
			chain.MeanGap, borda.MeanGap)
	}
}
